"""Plan execution: exact intermediate results and cardinalities.

The executor evaluates physical plans against the in-memory data.  Its job in
the reproduction is twofold: produce *true* per-operator cardinalities (the
paper's traces include actual cardinalities) and produce the per-operator
work profile that the runtime simulator converts into a latency.

Intermediate results are represented as aligned row-id vectors per base
table — a factorized representation that makes joins and aggregates cheap
and exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..sql import evaluate_predicate

__all__ = ["Intermediate", "ExecutionResult", "execute_plan", "equi_join"]


@dataclass
class Intermediate:
    """A factorized intermediate result: aligned row ids per base table."""

    row_ids: dict  # table -> np.ndarray of row ids, all equally long

    @property
    def n_rows(self):
        if not self.row_ids:
            return 0
        return len(next(iter(self.row_ids.values())))

    @property
    def tables(self):
        return set(self.row_ids)

    def column_values(self, db, table, column):
        return db.column(table, column).values[self.row_ids[table]]

    def take(self, positions):
        return Intermediate({t: ids[positions] for t, ids in self.row_ids.items()})


@dataclass
class ExecutionResult:
    """Output of executing a plan."""

    rows: object           # aggregate output (list of tuples)
    n_rows: int            # rows produced by the root
    node_profiles: list = field(default_factory=list)  # (node, profile) pairs


def join_sides(left: Intermediate, right: Intermediate, join_edge):
    """Resolve which side carries the FK child / the referenced parent."""
    if join_edge.child_table in left.tables:
        return left, right
    return right, left


def _run_positions(lo, counts):
    """Flat positions of the runs ``lo[i] : lo[i] + counts[i]``, in order.

    The offset arithmetic produces the exact integer sequence the per-run
    gather loop (:func:`_gather_parent_positions_reference`) writes.
    """
    total = int(counts.sum())
    starts = np.cumsum(counts) - counts
    offsets = np.arange(total, dtype=np.int64) - np.repeat(starts, counts)
    return np.repeat(lo, counts) + offsets


def _gather_parent_positions_reference(order, lo, hi, counts):
    """Original per-run gather loop (executable spec for ``_run_positions``)."""
    total = int(counts.sum())
    parent_positions = np.empty(total, dtype=np.int64)
    cursor = 0
    nonzero = np.nonzero(counts)[0]
    for i in nonzero:
        n = counts[i]
        parent_positions[cursor:cursor + n] = order[lo[i]:hi[i]]
        cursor += n
    return parent_positions


def combine_positions(child_side, parent_side, child_positions,
                      parent_positions):
    """Combine both sides' row ids at the matched positions."""
    combined = {}
    for table, ids in child_side.row_ids.items():
        combined[table] = ids[child_positions]
    for table, ids in parent_side.row_ids.items():
        combined[table] = ids[parent_positions]
    return Intermediate(combined)


def match_and_combine(child_side, parent_side, child_keys, sorted_keys,
                      positions):
    """Range-match child keys against a sorted parent view; combine row ids.

    ``sorted_keys``/``positions`` describe the parent side in stable key
    order (NaNs dropped): key ``sorted_keys[i]`` lives at row position
    ``positions[i]`` of the parent intermediate.  This is the shared tail of
    the per-call :func:`equi_join` and the trace engine's memoized join path.
    """
    child_valid = ~np.isnan(child_keys)
    lo = np.searchsorted(sorted_keys, child_keys, side="left")
    hi = np.searchsorted(sorted_keys, child_keys, side="right")
    counts = np.where(child_valid, hi - lo, 0)

    child_positions = np.repeat(np.arange(len(child_keys)), counts)
    parent_positions = positions[_run_positions(lo, counts)]

    return combine_positions(child_side, parent_side, child_positions,
                             parent_positions)


def equi_join(db, left: Intermediate, right: Intermediate, join_edge):
    """Join two intermediates on the edge; returns the combined result."""
    child_side, parent_side = join_sides(left, right, join_edge)
    child_keys = child_side.column_values(db, join_edge.child_table,
                                          join_edge.child_column)
    parent_keys = parent_side.column_values(db, join_edge.parent_table,
                                            join_edge.parent_column)

    # Sort the parent side once, then range-match each child key.
    order = np.argsort(parent_keys, kind="stable")
    sorted_keys = parent_keys[order]
    valid = ~np.isnan(sorted_keys)
    sorted_keys = sorted_keys[valid]
    order = order[valid]

    return match_and_combine(child_side, parent_side, child_keys,
                             sorted_keys, order)


def _group_keys(db, intermediate, group_by):
    """Integer group ids + number of groups for the GROUP BY columns."""
    if not group_by:
        return None, 1
    columns = [intermediate.column_values(db, t, c) for t, c in group_by]
    stacked = np.stack(columns, axis=1)
    # NaN-safe grouping: replace NaN with a sentinel outside the domain.
    stacked = np.where(np.isnan(stacked), -1.0e18, stacked)
    _, group_ids = np.unique(stacked, axis=0, return_inverse=True)
    return group_ids, int(group_ids.max() + 1) if len(group_ids) else 0


def _aggregate_rows(db, intermediate, aggregates, group_by):
    """Compute aggregate output rows (list of tuples)."""
    group_ids, n_groups = _group_keys(db, intermediate, group_by)
    if intermediate.n_rows == 0:
        if group_by:
            return []
        # SQL semantics: COUNT over empty input is 0, other aggs NULL.
        return [tuple(0 if agg.func == "count" else None for agg in aggregates)]

    def agg_value(agg, mask):
        if agg.func == "count" and agg.column is None:
            return int(mask.sum())
        values = intermediate.column_values(db, agg.table, agg.column)[mask]
        values = values[~np.isnan(values)]
        if values.size == 0:
            return 0 if agg.func == "count" else None
        if agg.func == "count":
            return int(values.size)
        if agg.func == "sum":
            return float(values.sum())
        if agg.func == "avg":
            return float(values.mean())
        if agg.func == "min":
            return float(values.min())
        return float(values.max())

    if not group_by:
        full = np.ones(intermediate.n_rows, dtype=bool)
        return [tuple(agg_value(a, full) for a in aggregates)]

    rows = []
    for group in range(n_groups):
        mask = group_ids == group
        key = tuple(intermediate.column_values(db, t, c)[mask][0]
                    for t, c in group_by)
        rows.append(key + tuple(agg_value(a, mask) for a in aggregates))
    return rows


def execute_plan(db, root, ctx=None) -> ExecutionResult:
    """Execute ``root`` against ``db``; annotates ``true_rows`` on every node.

    Without ``ctx`` this is the self-contained per-plan reference: every scan
    re-evaluates its predicate and every join re-sorts its parent keys.  With
    a :class:`~repro.executor.trace_engine.TraceExecutionContext` the scan
    row-id sets and the per-join-edge sorted key views are memoized across
    the plans of a trace (see :func:`~repro.executor.trace_engine.execute_trace`);
    the results are bit-identical either way.
    """
    profiles = []

    def scan(node):
        if ctx is not None:
            return ctx.scan_intermediate(node.table, node.filter_predicate)
        table = db.table(node.table)
        mask = evaluate_predicate(node.filter_predicate, table)
        return Intermediate({node.table: np.nonzero(mask)[0]})

    def join(left, right, edge):
        if ctx is not None:
            return ctx.equi_join(left, right, edge)
        return equi_join(db, left, right, edge)

    def run(node):
        if node.op_name in ("SeqScan", "IndexScan", "ColumnarScan"):
            result = scan(node)
            node.true_rows = float(result.n_rows)
            profiles.append((node, {"input_rows": len(db.table(node.table)),
                                    "output_rows": result.n_rows}))
            return result

        if node.op_name in ("Gather", "Broadcast", "Repartition"):
            result = run(node.children[0])
            node.true_rows = float(result.n_rows)
            profiles.append((node, {"rows": result.n_rows}))
            return result

        if node.is_join:
            left = run(node.children[0])
            right_node = node.children[1]
            if (node.op_name == "NestedLoopJoin" and right_node.is_scan):
                # Indexed inner: logically a filtered scan joined to the outer.
                right = scan(right_node)
                result = join(left, right, node.join)
                # EXPLAIN-ANALYZE semantics: inner rows are per-loop averages.
                loops = max(left.n_rows, 1)
                right_node.true_rows = float(result.n_rows) / loops
                profiles.append((right_node, {"loops": left.n_rows,
                                              "matches": result.n_rows}))
            else:
                right = run(right_node)
                result = join(left, right, node.join)
            node.true_rows = float(result.n_rows)
            profiles.append((node, {
                "left_rows": left.n_rows,
                "right_rows": right_node.true_rows if node.op_name == "NestedLoopJoin"
                else right.n_rows,
                "output_rows": result.n_rows,
            }))
            return result

        if node.op_name in ("Aggregate", "HashAggregate"):
            child = run(node.children[0])
            rows = _aggregate_rows(db, child, node.aggregates, node.group_by)
            node.true_rows = float(len(rows))
            profiles.append((node, {"input_rows": child.n_rows,
                                    "groups": len(rows)}))
            # Aggregates close the pipeline; represent output as empty ids.
            result = Intermediate({})
            result.output_rows = rows
            return result

        if node.op_name == "Sort":
            child = run(node.children[0])
            output = getattr(child, "output_rows", None)
            if output is not None:
                child.output_rows = sorted(
                    output, key=lambda r: tuple(-1e18 if v is None else v
                                                for v in r))
            node.true_rows = node.children[0].true_rows
            profiles.append((node, {"rows": node.true_rows}))
            return child

        raise ValueError(f"executor cannot run operator {node.op_name!r}")

    final = run(root)
    rows = getattr(final, "output_rows", None)
    if rows is None:
        rows = []
    return ExecutionResult(rows=rows, n_rows=int(root.true_rows or 0),
                           node_profiles=profiles)
