"""Operator-level runtime simulation.

This module substitutes the paper's physical testbed (Postgres v12 on
cloudlab c8220 nodes).  Given an executed plan (true cardinalities filled
in), it produces a latency in milliseconds by summing per-operator costs on
one fixed :class:`~repro.executor.profiles.HardwareProfile`.

Design constraints that preserve the paper's learning problem:

* The latency is a function of exactly the characteristics the transferable
  featurization exposes (operator types, cardinalities, widths, predicate
  structure, table pages, workers, index clustering) — so a zero-shot model
  *can* learn it across databases.
* The function is deliberately non-linear (hash-table cache misses and
  spills, external sorts, parallel startup overheads, regex evaluation
  costs), so the linear "scaled optimizer cost" baseline systematically
  mis-estimates it — as Postgres' abstract costs do in reality.
* Seeded log-normal noise makes runtimes non-deterministic functions of the
  features, bounding the best achievable Q-error away from 1.0.
"""

from __future__ import annotations

import hashlib

import numpy as np

from ..sql import BooleanPredicate, Comparison, PredOp
from .profiles import DEFAULT_HARDWARE

__all__ = ["predicate_row_cost_ns", "simulate_runtime_ms",
           "simulate_runtime_ms_batch", "plan_signature", "node_time_us"]


def predicate_row_cost_ns(predicate, hw):
    """CPU nanoseconds to evaluate the predicate tree on one row."""
    if predicate is None:
        return 0.0
    if isinstance(predicate, Comparison):
        op = predicate.op
        if op in (PredOp.IS_NULL, PredOp.IS_NOT_NULL):
            return hw.pred_null_ns
        if op == PredOp.IN:
            return hw.pred_in_base_ns + hw.pred_in_per_value_ns * len(predicate.literal)
        if op in (PredOp.LIKE, PredOp.NOT_LIKE):
            return (hw.pred_like_base_ns
                    + hw.pred_like_per_complexity_ns * predicate.literal_feature)
        if op == PredOp.EQ or op == PredOp.NEQ:
            if isinstance(predicate.literal, str):
                return hw.pred_dict_eq_ns
            return hw.pred_numeric_ns
        return hw.pred_numeric_ns
    if isinstance(predicate, BooleanPredicate):
        child_costs = [predicate_row_cost_ns(c, hw) for c in predicate.children]
        # Short-circuit evaluation: later conjuncts run on fewer rows.
        total = child_costs[0]
        for cost in child_costs[1:]:
            total += 0.55 * cost
        return total
    raise TypeError(f"unknown predicate {type(predicate)!r}")


def _cache_penalty(bytes_touched, hw):
    """Smooth cache-miss multiplier once the working set leaves the cache."""
    if bytes_touched <= hw.cache_bytes:
        return 1.0
    overshoot = np.log2(bytes_touched / hw.cache_bytes + 1.0)
    return 1.0 + hw.cache_miss_factor * min(overshoot, 4.0)


def _scan_us(db, node, hw):
    stats = db.table_stats(node.table)
    input_rows = stats.reltuples
    pages = stats.relpages
    if node.op_name == "ColumnarScan" and node.scanned_columns:
        frac = sum(db.column_stats(node.table, c).width
                   for c in node.scanned_columns) / max(stats.row_width, 1.0)
        pages = max(1.0, pages * min(frac, 1.0))
    io_us = pages * hw.seq_page_us
    row_ns = (hw.tuple_ns
              + hw.width_ns_per_byte * stats.row_width
              + predicate_row_cost_ns(node.filter_predicate, hw))
    cpu_us = input_rows * row_ns / 1000.0
    out_us = max(node.true_rows or 0.0, 0.0) * hw.emit_ns / 1000.0
    total = io_us + cpu_us + out_us
    if node.workers > 1:
        total = total / (node.workers ** hw.parallel_efficiency)
    return total


def _index_scan_us(db, node, hw, loops=1.0):
    stats = db.table_stats(node.table)
    col_stats = db.column_stats(node.table, node.index_column)
    matches_per_loop = max(node.true_rows or 0.0, 0.0)
    descend_us = hw.index_descend_us * np.log2(max(stats.reltuples, 2)) / 8.0
    random_frac = 1.0 - 0.75 * abs(col_stats.correlation)
    fetch_ns = (hw.index_fetch_random_ns * random_frac
                + hw.index_fetch_seq_ns * (1.0 - random_frac))
    residual_ns = predicate_row_cost_ns(node.filter_predicate, hw)
    per_loop_us = descend_us + matches_per_loop * (fetch_ns + residual_ns) / 1000.0
    return loops * per_loop_us


def _hash_join_us(node, hw):
    probe, build = node.children[0], node.children[1]
    build_rows = max(build.true_rows or build.est_rows, 0.0)
    probe_rows = max(probe.true_rows or probe.est_rows, 0.0)
    out_rows = max(node.true_rows or 0.0, 0.0)
    build_bytes = build_rows * max(build.width, 8.0)

    build_us = build_rows * (hw.hash_build_ns
                             + hw.hash_build_ns_per_byte * build.width) / 1000.0
    probe_us = probe_rows * hw.hash_probe_ns / 1000.0
    penalty = _cache_penalty(build_bytes, hw)
    build_us *= penalty
    probe_us *= penalty
    if build_bytes > hw.work_mem_bytes:
        ratio = min(build_bytes / hw.work_mem_bytes, 8.0)
        spill_mult = 1.0 + hw.spill_factor * np.log2(ratio + 1.0)
        io_us = 2.0 * build_bytes / hw.spill_io_bytes_per_us
        build_us = build_us * spill_mult + io_us
        probe_us *= spill_mult
    emit_us = out_rows * (hw.emit_ns + hw.width_ns_per_byte * node.width) / 1000.0
    return build_us + probe_us + emit_us


def _sort_us(node, hw):
    child = node.children[0]
    rows = max(child.true_rows or child.est_rows, 1.0)
    compare_ns = hw.sort_compare_ns + hw.sort_width_ns_per_byte * node.width
    total = rows * np.log2(rows + 2.0) * compare_ns / 1000.0
    if rows * max(node.width, 8.0) > hw.work_mem_bytes:
        total *= hw.external_sort_factor
    return total


def _aggregate_us(node, hw):
    child = node.children[0]
    in_rows = max(child.true_rows or child.est_rows, 0.0)
    groups = max(node.true_rows or 1.0, 1.0)
    n_aggs = max(len(node.aggregates), 1)
    total = in_rows * (hw.agg_row_ns + n_aggs * hw.agg_ns_per_agg) / 1000.0
    if node.op_name == "HashAggregate":
        total += in_rows * hw.hashagg_row_ns / 1000.0
        total *= _cache_penalty(groups * max(node.width, 8.0), hw)
        total += groups * hw.group_emit_ns / 1000.0
    return total


def node_time_us(db, node, hw):
    """Simulated latency contribution of one operator (public hook for the
    distributed runtime extension)."""
    if node.op_name in ("SeqScan", "ColumnarScan"):
        return _scan_us(db, node, hw)
    if node.op_name == "IndexScan":
        return _index_scan_us(db, node, hw)
    if node.op_name == "HashJoin":
        return _hash_join_us(node, hw)
    if node.op_name == "NestedLoopJoin":
        outer, inner = node.children[0], node.children[1]
        outer_rows = max(outer.true_rows or outer.est_rows, 0.0)
        out_rows = max(node.true_rows or 0.0, 0.0)
        total = outer_rows * hw.nl_loop_ns / 1000.0
        total += out_rows * hw.emit_ns / 1000.0
        if inner.op_name == "IndexScan":
            total += _index_scan_us(db, inner, hw, loops=max(outer_rows, 1.0))
        return total
    if node.op_name == "MergeJoin":
        left = max(node.children[0].true_rows or 0.0, 0.0)
        right = max(node.children[1].true_rows or 0.0, 0.0)
        out = max(node.true_rows or 0.0, 0.0)
        return ((left + right) * 100.0 + out * hw.emit_ns) / 1000.0
    if node.op_name == "Sort":
        return _sort_us(node, hw)
    if node.op_name in ("Aggregate", "HashAggregate"):
        return _aggregate_us(node, hw)
    if node.op_name == "Gather":
        rows = max(node.true_rows or 0.0, 0.0)
        return hw.parallel_startup_us + rows * hw.parallel_tuple_ns / 1000.0
    if node.op_name in ("Broadcast", "Repartition"):
        # Handled by the distributed runtime extension; without a cluster
        # context these cost a per-row transfer on the local profile.
        rows = max(node.true_rows or 0.0, 0.0)
        return rows * (hw.emit_ns + hw.width_ns_per_byte * node.width) / 1000.0
    raise ValueError(f"no runtime rule for operator {node.op_name!r}")


def _signature_from_nodes(db_name, nodes):
    """The :func:`plan_signature` digest over a precollected node list."""
    digest = hashlib.sha256()
    digest.update(db_name.encode())
    for node in nodes:
        digest.update(node.op_name.encode())
        digest.update(str(node.table).encode())
        digest.update(str(int(node.true_rows or 0)).encode())
        if node.filter_predicate is not None:
            digest.update(node.filter_predicate.describe().encode())
    return int.from_bytes(digest.digest()[:8], "little")


def plan_signature(db_name, root):
    """Deterministic signature of a plan for noise seeding."""
    return _signature_from_nodes(db_name, root.iter_nodes())


def simulate_runtime_ms(db, root, hardware=None, seed=0, skip_inner_index=True):
    """Simulated latency of an executed plan in milliseconds.

    ``root`` must carry ``true_rows`` annotations (run the executor first).
    Noise is deterministic in ``(database, plan, seed)``, so regenerating a
    trace yields identical runtimes.
    """
    hw = hardware or DEFAULT_HARDWARE
    inner_index_nodes = set()
    if skip_inner_index:
        # Indexed NL inners are charged inside the NestedLoopJoin rule.
        for node in root.iter_nodes():
            if node.op_name == "NestedLoopJoin" and node.children[1].op_name == "IndexScan":
                inner_index_nodes.add(id(node.children[1]))

    total_us = hw.query_overhead_us
    for node in root.iter_nodes():
        if id(node) in inner_index_nodes:
            continue
        total_us += node_time_us(db, node, hw)

    rng = np.random.default_rng((plan_signature(db.name, root) + seed) % (2 ** 63))
    noise = float(np.exp(rng.normal(0.0, hw.noise_sigma)))
    return total_us * noise / 1000.0


# ----------------------------------------------------------------------
# Batched simulation over a whole trace
# ----------------------------------------------------------------------
# The per-plan :func:`simulate_runtime_ms` above is the executable reference
# spec: one Python call per node, one scalar ufunc dispatch per term.  The
# batch path below assembles the per-node costs column-wise — nodes grouped
# by operator, their scalar characteristics gathered into arrays, the cost
# formulas evaluated once per group as whole-array expressions written with
# the *same association order* as the scalar ones — and then accumulates each
# plan's total sequentially in node-iteration order, so every latency is
# bit-identical to the reference.  Noise is drawn from the same per-plan
# seeded streams (`plan_signature`-derived), never from a shared one.

def _true_or_est(node):
    return node.true_rows or node.est_rows


def _cache_penalty_batch(bytes_touched, hw):
    """Vectorized :func:`_cache_penalty` (same arithmetic per element)."""
    overshoot = np.log2(bytes_touched / hw.cache_bytes + 1.0)
    return np.where(bytes_touched <= hw.cache_bytes, 1.0,
                    1.0 + hw.cache_miss_factor * np.minimum(overshoot, 4.0))


def _scan_us_batch(db, nodes, hw, pred_cost):
    reltuples = np.empty(len(nodes))
    pages = np.empty(len(nodes))
    row_width = np.empty(len(nodes))
    pred_ns = np.empty(len(nodes))
    true_rows = np.empty(len(nodes))
    for i, node in enumerate(nodes):
        stats = db.table_stats(node.table)
        reltuples[i] = stats.reltuples
        node_pages = stats.relpages
        if node.op_name == "ColumnarScan" and node.scanned_columns:
            frac = sum(db.column_stats(node.table, c).width
                       for c in node.scanned_columns) / max(stats.row_width, 1.0)
            node_pages = max(1.0, node_pages * min(frac, 1.0))
        pages[i] = node_pages
        row_width[i] = stats.row_width
        pred_ns[i] = pred_cost(node.filter_predicate)
        true_rows[i] = node.true_rows or 0.0
    io_us = pages * hw.seq_page_us
    row_ns = hw.tuple_ns + hw.width_ns_per_byte * row_width + pred_ns
    cpu_us = reltuples * row_ns / 1000.0
    out_us = np.maximum(true_rows, 0.0) * hw.emit_ns / 1000.0
    total = io_us + cpu_us + out_us
    for i, node in enumerate(nodes):
        if node.workers > 1:
            # Python ``**`` exactly as the scalar rule (libm pow).
            total[i] = total[i] / (node.workers ** hw.parallel_efficiency)
    return total


def _index_scan_us_batch(db, nodes, hw, pred_cost, loops):
    reltuples = np.empty(len(nodes))
    correlation = np.empty(len(nodes))
    matches = np.empty(len(nodes))
    pred_ns = np.empty(len(nodes))
    for i, node in enumerate(nodes):
        stats = db.table_stats(node.table)
        reltuples[i] = stats.reltuples
        correlation[i] = db.column_stats(node.table, node.index_column).correlation
        matches[i] = node.true_rows or 0.0
        pred_ns[i] = pred_cost(node.filter_predicate)
    matches = np.maximum(matches, 0.0)
    descend_us = hw.index_descend_us * np.log2(np.maximum(reltuples, 2)) / 8.0
    random_frac = 1.0 - 0.75 * np.abs(correlation)
    fetch_ns = (hw.index_fetch_random_ns * random_frac
                + hw.index_fetch_seq_ns * (1.0 - random_frac))
    per_loop_us = descend_us + matches * (fetch_ns + pred_ns) / 1000.0
    return loops * per_loop_us


def _hash_join_us_batch(nodes, hw):
    build_rows = np.empty(len(nodes))
    probe_rows = np.empty(len(nodes))
    out_rows = np.empty(len(nodes))
    build_width = np.empty(len(nodes))
    node_width = np.empty(len(nodes))
    for i, node in enumerate(nodes):
        probe, build = node.children[0], node.children[1]
        build_rows[i] = max(_true_or_est(build), 0.0)
        probe_rows[i] = max(_true_or_est(probe), 0.0)
        out_rows[i] = max(node.true_rows or 0.0, 0.0)
        build_width[i] = build.width
        node_width[i] = node.width
    build_bytes = build_rows * np.maximum(build_width, 8.0)

    build_us = build_rows * (hw.hash_build_ns
                             + hw.hash_build_ns_per_byte * build_width) / 1000.0
    probe_us = probe_rows * hw.hash_probe_ns / 1000.0
    penalty = _cache_penalty_batch(build_bytes, hw)
    build_us = build_us * penalty
    probe_us = probe_us * penalty
    spills = build_bytes > hw.work_mem_bytes
    ratio = np.minimum(build_bytes / hw.work_mem_bytes, 8.0)
    spill_mult = 1.0 + hw.spill_factor * np.log2(ratio + 1.0)
    io_us = 2.0 * build_bytes / hw.spill_io_bytes_per_us
    build_us = np.where(spills, build_us * spill_mult + io_us, build_us)
    probe_us = np.where(spills, probe_us * spill_mult, probe_us)
    emit_us = (out_rows * (hw.emit_ns + hw.width_ns_per_byte * node_width)
               / 1000.0)
    return build_us + probe_us + emit_us


def _sort_us_batch(nodes, hw):
    rows = np.empty(len(nodes))
    width = np.empty(len(nodes))
    for i, node in enumerate(nodes):
        rows[i] = max(_true_or_est(node.children[0]), 1.0)
        width[i] = node.width
    compare_ns = hw.sort_compare_ns + hw.sort_width_ns_per_byte * width
    total = rows * np.log2(rows + 2.0) * compare_ns / 1000.0
    external = rows * np.maximum(width, 8.0) > hw.work_mem_bytes
    return np.where(external, total * hw.external_sort_factor, total)


def _aggregate_us_batch(nodes, hw):
    in_rows = np.empty(len(nodes))
    groups = np.empty(len(nodes))
    n_aggs = np.empty(len(nodes))
    width = np.empty(len(nodes))
    hashed = np.empty(len(nodes), dtype=bool)
    for i, node in enumerate(nodes):
        in_rows[i] = max(_true_or_est(node.children[0]), 0.0)
        groups[i] = max(node.true_rows or 1.0, 1.0)
        n_aggs[i] = max(len(node.aggregates), 1)
        width[i] = node.width
        hashed[i] = node.op_name == "HashAggregate"
    total = in_rows * (hw.agg_row_ns + n_aggs * hw.agg_ns_per_agg) / 1000.0
    hash_total = total + in_rows * hw.hashagg_row_ns / 1000.0
    hash_total = hash_total * _cache_penalty_batch(
        groups * np.maximum(width, 8.0), hw)
    hash_total = hash_total + groups * hw.group_emit_ns / 1000.0
    return np.where(hashed, hash_total, total)


def _nested_loop_us_batch(db, nodes, hw, pred_cost):
    outer_rows = np.empty(len(nodes))
    out_rows = np.empty(len(nodes))
    for i, node in enumerate(nodes):
        outer_rows[i] = max(_true_or_est(node.children[0]), 0.0)
        out_rows[i] = max(node.true_rows or 0.0, 0.0)
    total = outer_rows * hw.nl_loop_ns / 1000.0
    total = total + out_rows * hw.emit_ns / 1000.0
    indexed = [i for i, node in enumerate(nodes)
               if node.children[1].op_name == "IndexScan"]
    if indexed:
        inner_nodes = [nodes[i].children[1] for i in indexed]
        loops = np.maximum(outer_rows[indexed], 1.0)
        inner_us = _index_scan_us_batch(db, inner_nodes, hw, pred_cost, loops)
        total[indexed] = total[indexed] + inner_us
    return total


def _rows_emit_us_batch(nodes, hw):
    rows = np.empty(len(nodes))
    width = np.empty(len(nodes))
    for i, node in enumerate(nodes):
        rows[i] = max(node.true_rows or 0.0, 0.0)
        width[i] = node.width
    return rows * (hw.emit_ns + hw.width_ns_per_byte * width) / 1000.0


def _merge_join_us_batch(nodes, hw):
    left = np.empty(len(nodes))
    right = np.empty(len(nodes))
    out = np.empty(len(nodes))
    for i, node in enumerate(nodes):
        left[i] = max(node.children[0].true_rows or 0.0, 0.0)
        right[i] = max(node.children[1].true_rows or 0.0, 0.0)
        out[i] = max(node.true_rows or 0.0, 0.0)
    return ((left + right) * 100.0 + out * hw.emit_ns) / 1000.0


def _gather_us_batch(nodes, hw):
    rows = np.empty(len(nodes))
    for i, node in enumerate(nodes):
        rows[i] = max(node.true_rows or 0.0, 0.0)
    return hw.parallel_startup_us + rows * hw.parallel_tuple_ns / 1000.0


_BATCH_RULES = {
    "SeqScan": "scan", "ColumnarScan": "scan", "IndexScan": "index_scan",
    "HashJoin": "hash_join", "NestedLoopJoin": "nested_loop",
    "MergeJoin": "merge_join", "Sort": "sort",
    "Aggregate": "aggregate", "HashAggregate": "aggregate",
    "Gather": "gather", "Broadcast": "rows_emit", "Repartition": "rows_emit",
}


def simulate_runtime_ms_batch(db, roots, hardware=None, seed=0,
                              skip_inner_index=True):
    """Simulated latencies of many executed plans, as one batch.

    Bit-identical to ``[simulate_runtime_ms(db, r, ...) for r in roots]``:
    per-node costs are assembled column-wise per operator group, each plan's
    total accumulates in node-iteration order, and the log-normal noise is
    drawn from the same per-plan seeded stream the scalar path uses.
    Returns a float array of length ``len(roots)``.
    """
    from .. import perfstats

    hw = hardware or DEFAULT_HARDWARE

    pred_costs = {}  # id(predicate) -> ns; plans pin the predicate objects

    def pred_cost(predicate):
        if predicate is None:
            return 0.0
        cost = pred_costs.get(id(predicate))
        if cost is None:
            cost = predicate_row_cost_ns(predicate, hw)
            pred_costs[id(predicate)] = cost
        return cost

    plan_nodes = []
    signatures = []
    groups = {}  # rule -> (flat indices, nodes)
    n_flat = 0
    for root in roots:
        perfstats.increment("simulate.batched")
        all_nodes = list(root.iter_nodes())
        signatures.append(_signature_from_nodes(db.name, all_nodes))
        inner_index_nodes = set()
        if skip_inner_index:
            for node in all_nodes:
                if (node.op_name == "NestedLoopJoin"
                        and node.children[1].op_name == "IndexScan"):
                    inner_index_nodes.add(id(node.children[1]))
        if inner_index_nodes:
            nodes = [node for node in all_nodes
                     if id(node) not in inner_index_nodes]
        else:
            nodes = all_nodes
        plan_nodes.append(nodes)
        for node in nodes:
            rule = _BATCH_RULES.get(node.op_name)
            if rule is None:
                raise ValueError(
                    f"no runtime rule for operator {node.op_name!r}")
            indices, members = groups.setdefault(rule, ([], []))
            indices.append(n_flat)
            members.append(node)
            n_flat += 1

    costs = np.zeros(n_flat)
    for rule, (indices, members) in groups.items():
        if rule == "scan":
            values = _scan_us_batch(db, members, hw, pred_cost)
        elif rule == "index_scan":
            values = _index_scan_us_batch(db, members, hw, pred_cost, 1.0)
        elif rule == "hash_join":
            values = _hash_join_us_batch(members, hw)
        elif rule == "nested_loop":
            values = _nested_loop_us_batch(db, members, hw, pred_cost)
        elif rule == "merge_join":
            values = _merge_join_us_batch(members, hw)
        elif rule == "sort":
            values = _sort_us_batch(members, hw)
        elif rule == "aggregate":
            values = _aggregate_us_batch(members, hw)
        elif rule == "gather":
            values = _gather_us_batch(members, hw)
        else:
            values = _rows_emit_us_batch(members, hw)
        costs[indices] = values

    # Per-plan totals accumulate sequentially in traversal order (floating-
    # point addition is order-sensitive; this is the reference's order).
    flat_costs = costs.tolist()
    runtimes = np.empty(len(roots))
    cursor = 0
    for p, nodes in enumerate(plan_nodes):
        total_us = hw.query_overhead_us
        for _ in nodes:
            total_us += flat_costs[cursor]
            cursor += 1
        rng = np.random.default_rng((signatures[p] + seed) % (2 ** 63))
        noise = float(np.exp(rng.normal(0.0, hw.noise_sigma)))
        runtimes[p] = total_us * noise / 1000.0
    return runtimes
