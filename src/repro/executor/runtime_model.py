"""Operator-level runtime simulation.

This module substitutes the paper's physical testbed (Postgres v12 on
cloudlab c8220 nodes).  Given an executed plan (true cardinalities filled
in), it produces a latency in milliseconds by summing per-operator costs on
one fixed :class:`~repro.executor.profiles.HardwareProfile`.

Design constraints that preserve the paper's learning problem:

* The latency is a function of exactly the characteristics the transferable
  featurization exposes (operator types, cardinalities, widths, predicate
  structure, table pages, workers, index clustering) — so a zero-shot model
  *can* learn it across databases.
* The function is deliberately non-linear (hash-table cache misses and
  spills, external sorts, parallel startup overheads, regex evaluation
  costs), so the linear "scaled optimizer cost" baseline systematically
  mis-estimates it — as Postgres' abstract costs do in reality.
* Seeded log-normal noise makes runtimes non-deterministic functions of the
  features, bounding the best achievable Q-error away from 1.0.
"""

from __future__ import annotations

import hashlib

import numpy as np

from ..sql import BooleanPredicate, Comparison, PredOp
from .profiles import DEFAULT_HARDWARE

__all__ = ["predicate_row_cost_ns", "simulate_runtime_ms", "plan_signature",
           "node_time_us"]


def predicate_row_cost_ns(predicate, hw):
    """CPU nanoseconds to evaluate the predicate tree on one row."""
    if predicate is None:
        return 0.0
    if isinstance(predicate, Comparison):
        op = predicate.op
        if op in (PredOp.IS_NULL, PredOp.IS_NOT_NULL):
            return hw.pred_null_ns
        if op == PredOp.IN:
            return hw.pred_in_base_ns + hw.pred_in_per_value_ns * len(predicate.literal)
        if op in (PredOp.LIKE, PredOp.NOT_LIKE):
            return (hw.pred_like_base_ns
                    + hw.pred_like_per_complexity_ns * predicate.literal_feature)
        if op == PredOp.EQ or op == PredOp.NEQ:
            if isinstance(predicate.literal, str):
                return hw.pred_dict_eq_ns
            return hw.pred_numeric_ns
        return hw.pred_numeric_ns
    if isinstance(predicate, BooleanPredicate):
        child_costs = [predicate_row_cost_ns(c, hw) for c in predicate.children]
        # Short-circuit evaluation: later conjuncts run on fewer rows.
        total = child_costs[0]
        for cost in child_costs[1:]:
            total += 0.55 * cost
        return total
    raise TypeError(f"unknown predicate {type(predicate)!r}")


def _cache_penalty(bytes_touched, hw):
    """Smooth cache-miss multiplier once the working set leaves the cache."""
    if bytes_touched <= hw.cache_bytes:
        return 1.0
    overshoot = np.log2(bytes_touched / hw.cache_bytes + 1.0)
    return 1.0 + hw.cache_miss_factor * min(overshoot, 4.0)


def _scan_us(db, node, hw):
    stats = db.table_stats(node.table)
    input_rows = stats.reltuples
    pages = stats.relpages
    if node.op_name == "ColumnarScan" and node.scanned_columns:
        frac = sum(db.column_stats(node.table, c).width
                   for c in node.scanned_columns) / max(stats.row_width, 1.0)
        pages = max(1.0, pages * min(frac, 1.0))
    io_us = pages * hw.seq_page_us
    row_ns = (hw.tuple_ns
              + hw.width_ns_per_byte * stats.row_width
              + predicate_row_cost_ns(node.filter_predicate, hw))
    cpu_us = input_rows * row_ns / 1000.0
    out_us = max(node.true_rows or 0.0, 0.0) * hw.emit_ns / 1000.0
    total = io_us + cpu_us + out_us
    if node.workers > 1:
        total = total / (node.workers ** hw.parallel_efficiency)
    return total


def _index_scan_us(db, node, hw, loops=1.0):
    stats = db.table_stats(node.table)
    col_stats = db.column_stats(node.table, node.index_column)
    matches_per_loop = max(node.true_rows or 0.0, 0.0)
    descend_us = hw.index_descend_us * np.log2(max(stats.reltuples, 2)) / 8.0
    random_frac = 1.0 - 0.75 * abs(col_stats.correlation)
    fetch_ns = (hw.index_fetch_random_ns * random_frac
                + hw.index_fetch_seq_ns * (1.0 - random_frac))
    residual_ns = predicate_row_cost_ns(node.filter_predicate, hw)
    per_loop_us = descend_us + matches_per_loop * (fetch_ns + residual_ns) / 1000.0
    return loops * per_loop_us


def _hash_join_us(node, hw):
    probe, build = node.children[0], node.children[1]
    build_rows = max(build.true_rows or build.est_rows, 0.0)
    probe_rows = max(probe.true_rows or probe.est_rows, 0.0)
    out_rows = max(node.true_rows or 0.0, 0.0)
    build_bytes = build_rows * max(build.width, 8.0)

    build_us = build_rows * (hw.hash_build_ns
                             + hw.hash_build_ns_per_byte * build.width) / 1000.0
    probe_us = probe_rows * hw.hash_probe_ns / 1000.0
    penalty = _cache_penalty(build_bytes, hw)
    build_us *= penalty
    probe_us *= penalty
    if build_bytes > hw.work_mem_bytes:
        ratio = min(build_bytes / hw.work_mem_bytes, 8.0)
        spill_mult = 1.0 + hw.spill_factor * np.log2(ratio + 1.0)
        io_us = 2.0 * build_bytes / hw.spill_io_bytes_per_us
        build_us = build_us * spill_mult + io_us
        probe_us *= spill_mult
    emit_us = out_rows * (hw.emit_ns + hw.width_ns_per_byte * node.width) / 1000.0
    return build_us + probe_us + emit_us


def _sort_us(node, hw):
    child = node.children[0]
    rows = max(child.true_rows or child.est_rows, 1.0)
    compare_ns = hw.sort_compare_ns + hw.sort_width_ns_per_byte * node.width
    total = rows * np.log2(rows + 2.0) * compare_ns / 1000.0
    if rows * max(node.width, 8.0) > hw.work_mem_bytes:
        total *= hw.external_sort_factor
    return total


def _aggregate_us(node, hw):
    child = node.children[0]
    in_rows = max(child.true_rows or child.est_rows, 0.0)
    groups = max(node.true_rows or 1.0, 1.0)
    n_aggs = max(len(node.aggregates), 1)
    total = in_rows * (hw.agg_row_ns + n_aggs * hw.agg_ns_per_agg) / 1000.0
    if node.op_name == "HashAggregate":
        total += in_rows * hw.hashagg_row_ns / 1000.0
        total *= _cache_penalty(groups * max(node.width, 8.0), hw)
        total += groups * hw.group_emit_ns / 1000.0
    return total


def node_time_us(db, node, hw):
    """Simulated latency contribution of one operator (public hook for the
    distributed runtime extension)."""
    if node.op_name in ("SeqScan", "ColumnarScan"):
        return _scan_us(db, node, hw)
    if node.op_name == "IndexScan":
        return _index_scan_us(db, node, hw)
    if node.op_name == "HashJoin":
        return _hash_join_us(node, hw)
    if node.op_name == "NestedLoopJoin":
        outer, inner = node.children[0], node.children[1]
        outer_rows = max(outer.true_rows or outer.est_rows, 0.0)
        out_rows = max(node.true_rows or 0.0, 0.0)
        total = outer_rows * hw.nl_loop_ns / 1000.0
        total += out_rows * hw.emit_ns / 1000.0
        if inner.op_name == "IndexScan":
            total += _index_scan_us(db, inner, hw, loops=max(outer_rows, 1.0))
        return total
    if node.op_name == "MergeJoin":
        left = max(node.children[0].true_rows or 0.0, 0.0)
        right = max(node.children[1].true_rows or 0.0, 0.0)
        out = max(node.true_rows or 0.0, 0.0)
        return ((left + right) * 100.0 + out * hw.emit_ns) / 1000.0
    if node.op_name == "Sort":
        return _sort_us(node, hw)
    if node.op_name in ("Aggregate", "HashAggregate"):
        return _aggregate_us(node, hw)
    if node.op_name == "Gather":
        rows = max(node.true_rows or 0.0, 0.0)
        return hw.parallel_startup_us + rows * hw.parallel_tuple_ns / 1000.0
    if node.op_name in ("Broadcast", "Repartition"):
        # Handled by the distributed runtime extension; without a cluster
        # context these cost a per-row transfer on the local profile.
        rows = max(node.true_rows or 0.0, 0.0)
        return rows * (hw.emit_ns + hw.width_ns_per_byte * node.width) / 1000.0
    raise ValueError(f"no runtime rule for operator {node.op_name!r}")


def plan_signature(db_name, root):
    """Deterministic signature of a plan for noise seeding."""
    digest = hashlib.sha256()
    digest.update(db_name.encode())
    for node in root.iter_nodes():
        digest.update(node.op_name.encode())
        digest.update(str(node.table).encode())
        digest.update(str(int(node.true_rows or 0)).encode())
        if node.filter_predicate is not None:
            digest.update(node.filter_predicate.describe().encode())
    return int.from_bytes(digest.digest()[:8], "little")


def simulate_runtime_ms(db, root, hardware=None, seed=0, skip_inner_index=True):
    """Simulated latency of an executed plan in milliseconds.

    ``root`` must carry ``true_rows`` annotations (run the executor first).
    Noise is deterministic in ``(database, plan, seed)``, so regenerating a
    trace yields identical runtimes.
    """
    hw = hardware or DEFAULT_HARDWARE
    inner_index_nodes = set()
    if skip_inner_index:
        # Indexed NL inners are charged inside the NestedLoopJoin rule.
        for node in root.iter_nodes():
            if node.op_name == "NestedLoopJoin" and node.children[1].op_name == "IndexScan":
                inner_index_nodes.add(id(node.children[1]))

    total_us = hw.query_overhead_us
    for node in root.iter_nodes():
        if id(node) in inner_index_nodes:
            continue
        total_us += node_time_us(db, node, hw)

    rng = np.random.default_rng((plan_signature(db.name, root) + seed) % (2 ** 63))
    noise = float(np.exp(rng.normal(0.0, hw.noise_sigma)))
    return total_us * noise / 1000.0
