"""Hardware profiles for the runtime simulator.

One fixed profile plays the role of the paper's identical cloudlab c8220
nodes: every database's traces are "executed" on the same simulated machine,
so runtimes are a function of plan + data characteristics only (plus noise).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["HardwareProfile", "DEFAULT_HARDWARE", "CLOUD_DW_NODE"]


@dataclass(frozen=True)
class HardwareProfile:
    """Latency constants of the simulated machine (ns / us granularity)."""

    # Fixed per-query overhead: parse, plan, executor startup (us).
    query_overhead_us: float = 140.0
    # Sequential page read (8 KiB), warm-ish storage (us).
    seq_page_us: float = 18.0
    random_page_us: float = 65.0
    # Per-tuple CPU costs (ns).
    tuple_ns: float = 95.0
    width_ns_per_byte: float = 0.9
    emit_ns: float = 85.0
    # Predicate evaluation (ns per row).
    pred_numeric_ns: float = 7.0
    pred_dict_eq_ns: float = 9.0
    pred_in_base_ns: float = 12.0
    pred_in_per_value_ns: float = 2.0
    pred_like_base_ns: float = 55.0
    pred_like_per_complexity_ns: float = 26.0
    pred_null_ns: float = 4.0
    # Hash join (ns / bytes).
    hash_build_ns: float = 175.0
    hash_build_ns_per_byte: float = 0.45
    hash_probe_ns: float = 135.0
    # Memory hierarchy.  Sized so joins at benchmark scale regularly leave
    # the cache and occasionally spill — the non-linear regimes a linear
    # cost abstraction cannot track.
    work_mem_bytes: float = 256 * 1024
    cache_bytes: float = 128 * 1024
    cache_miss_factor: float = 0.38
    spill_factor: float = 0.85
    spill_io_bytes_per_us: float = 900.0
    # Index access.
    index_descend_us: float = 1.1
    index_fetch_random_ns: float = 1900.0
    index_fetch_seq_ns: float = 240.0
    # Sort.
    sort_compare_ns: float = 24.0
    sort_width_ns_per_byte: float = 0.2
    external_sort_factor: float = 2.1
    # Aggregation.
    agg_ns_per_agg: float = 34.0
    agg_row_ns: float = 22.0
    hashagg_row_ns: float = 105.0
    group_emit_ns: float = 160.0
    # Parallelism (the nonlinearity Postgres' linear costing misses).
    parallel_startup_us: float = 2400.0
    parallel_tuple_ns: float = 28.0
    parallel_efficiency: float = 0.82   # speedup = workers ** efficiency
    # Nested loop bookkeeping.
    nl_loop_ns: float = 140.0
    # Noise (multiplicative log-normal sigma).
    noise_sigma: float = 0.07


DEFAULT_HARDWARE = HardwareProfile()

# The "commercial cloud data warehouse" node of Section 5.1: faster storage,
# more memory, columnar-friendly, plus network constants used by the
# distributed runtime extension.
CLOUD_DW_NODE = HardwareProfile(
    query_overhead_us=2600.0,
    seq_page_us=9.0,
    random_page_us=40.0,
    work_mem_bytes=2 * 1024 * 1024,
    cache_bytes=512 * 1024,
    parallel_startup_us=1500.0,
    noise_sigma=0.11,
)
