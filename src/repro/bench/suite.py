"""Benchmark suite construction and artifact caching.

The experiments share expensive artifacts — the 20 databases, their executed
traces, featurized graphs, and the main zero-shot model trained on the 19
non-IMDB databases.  :func:`get_artifacts` memoizes them per suite config so
the whole benchmark session builds each exactly once, and — when
``REPRO_ARTIFACT_DIR`` is set — persists them through a disk-backed
:class:`~repro.bench.store.ArtifactStore`, so a *second* session skips
database generation, trace execution, featurization and model training
entirely (content keys + input-fingerprint validation guarantee stale
artifacts are rebuilt, never silently reused).

Scales (select with ``REPRO_SCALE`` or an explicit :class:`SuiteConfig`):

========  ==========  ===============  ======  ==========
scale     base rows   queries per DB   epochs  hidden dim
========  ==========  ===============  ======  ==========
tiny      1500        60               15      32
small     6000        150              30      48
medium    14000       250              50      64
========  ==========  ===============  ======  ==========
"""

from __future__ import annotations

import os
from dataclasses import astuple, dataclass

import numpy as np

from ..core import EstimatorCache, TrainingConfig, ZeroShotCostModel, featurize_records
from ..featurization import BatchCache, FeaturizationCache, records_fingerprint
from ..datagen import BENCHMARK_NAMES, make_benchmark_database
from ..workloads import (WorkloadConfig, WorkloadGenerator, generate_trace,
                         imdb_workload)
from .store import store_from_env

__all__ = ["SuiteConfig", "Artifacts", "get_artifacts", "artifacts_for",
           "register_artifacts", "scale_from_env"]

_SCALES = {
    "tiny": dict(base_rows=1500, queries_per_db=60, epochs=15, hidden_dim=32),
    "small": dict(base_rows=6000, queries_per_db=120, epochs=24, hidden_dim=48),
    "medium": dict(base_rows=14000, queries_per_db=250, epochs=50, hidden_dim=64),
}


def scale_from_env(default="small"):
    scale = os.environ.get("REPRO_SCALE", default)
    if scale not in _SCALES:
        raise ValueError(f"REPRO_SCALE must be one of {sorted(_SCALES)}")
    return scale


@dataclass(frozen=True)
class SuiteConfig:
    """Parameters of one benchmark-suite instantiation."""

    scale: str = "small"
    seed: int = 0
    max_joins: int = 4
    database_names: tuple = tuple(BENCHMARK_NAMES)

    @property
    def base_rows(self):
        return _SCALES[self.scale]["base_rows"]

    @property
    def queries_per_db(self):
        return _SCALES[self.scale]["queries_per_db"]

    @property
    def training_config(self):
        preset = _SCALES[self.scale]
        return TrainingConfig(hidden_dim=preset["hidden_dim"],
                              epochs=preset["epochs"], batch_size=64,
                              seed=self.seed)


class Artifacts:
    """Lazily built benchmark artifacts, cached in memory and (optionally)
    hydrated from / persisted to a disk :class:`ArtifactStore`."""

    def __init__(self, config: SuiteConfig, store=None):
        self.config = config
        self.store = store
        self._databases = None
        self._traces = {}
        self._imdb_eval = {}
        self._graphs = {}
        self._main_model = None
        # id(trace) -> (trace, {cards: digest}): the held trace reference
        # keeps the id from being recycled while the memo entry lives.
        self._trace_fps = {}
        # The estimator cache shares this Artifacts' store (falling back to
        # REPRO_ARTIFACT_DIR when unset), so per-table SPNs hydrate from
        # disk instead of relearning on cold "deepdb" sessions.
        self.estimator_cache = EstimatorCache(sample_size=1024,
                                              seed=config.seed, store=store)
        # Evaluations reuse the cached graph lists from self.graphs(), so
        # batches built for one experiment serve every later one.
        self.batch_cache = BatchCache(max_entries=256)
        # Content-keyed graph cache: per-cardinality-mode evaluations and
        # equal-but-regenerated plans skip featurization entirely.
        self.featurization_cache = FeaturizationCache(max_entries=16384)

    def _generation_key(self):
        """The config facets that determine artifact generation."""
        return (self.config.scale, self.config.seed, self.config.max_joins,
                self.config.database_names, self.config.base_rows,
                self.config.queries_per_db)

    # ------------------------------------------------------------------
    @property
    def databases(self):
        if self._databases is None:
            databases = {}
            for name in self.config.database_names:
                db, key = None, None
                if self.store is not None:
                    key = self.store.key("database", name,
                                         self.config.base_rows)
                    db = self.store.load("database", key)
                if db is None:
                    db = make_benchmark_database(name, self.config.base_rows)
                    if self.store is not None:
                        self.store.save("database", key, db)
                databases[name] = db
            self._databases = databases
        return self._databases

    @property
    def training_names(self):
        """The 19 databases used for pre-training (all but IMDB)."""
        return [n for n in self.config.database_names if n != "imdb"]

    # ------------------------------------------------------------------
    def trace(self, db_name, mode="standard", n=None, seed_offset=0,
              max_joins=None):
        """Standard/complex/index workload trace for one database (cached).

        Store entries are keyed on the full generation config and validated
        against the database's row-count fingerprint, so a regenerated or
        differently sized database rebuilds its traces.
        """
        key = (db_name, mode, n, seed_offset, max_joins)
        if key not in self._traces:
            db = self.databases[db_name]
            trace, store_key = None, None
            if self.store is not None:
                store_key = self.store.key("trace", self._generation_key(),
                                           key)
                trace = self.store.load("trace", store_key,
                                        fingerprint=db.fingerprint())
            if trace is None:
                config = WorkloadConfig(
                    mode="standard" if mode == "index" else mode,
                    max_joins=max_joins if max_joins is not None
                    else self.config.max_joins)
                generator = WorkloadGenerator(
                    db, config,
                    seed=self.config.seed + seed_offset
                    + 1000 * self.config.database_names.index(db_name))
                queries = generator.generate(n or self.config.queries_per_db)
                trace = generate_trace(db, queries, seed=self.config.seed,
                                       index_mode=(mode == "index"))
                if self.store is not None:
                    self.store.save("trace", store_key, trace,
                                    fingerprint=db.fingerprint())
            self._traces[key] = trace
        return self._traces[key]

    def training_traces(self, mode="standard", max_joins=None):
        return [self.trace(name, mode=mode, max_joins=max_joins)
                for name in self.training_names]

    def imdb_eval_trace(self, workload_name):
        """Named IMDB evaluation workload executed on the IMDB database."""
        if workload_name not in self._imdb_eval:
            db = self.databases["imdb"]
            trace, store_key = None, None
            if self.store is not None:
                store_key = self.store.key("trace", self._generation_key(),
                                           ("imdb_eval", workload_name))
                trace = self.store.load("trace", store_key,
                                        fingerprint=db.fingerprint())
            if trace is None:
                queries = imdb_workload(db, workload_name)
                trace = generate_trace(db, queries, seed=self.config.seed)
                if self.store is not None:
                    self.store.save("trace", store_key, trace,
                                    fingerprint=db.fingerprint())
            self._imdb_eval[workload_name] = trace
        return self._imdb_eval[workload_name]

    # ------------------------------------------------------------------
    def trace_fingerprint(self, trace, cards):
        """Content digest of ``(trace records, cards)`` (memoized).

        The memo is keyed by object identity for speed but each entry pins
        its trace, so a recycled ``id()`` can never alias another trace's
        digest; the digest itself is pure content (per-plan fingerprints +
        database row counts), so equal traces share it.
        """
        entry = self._trace_fps.get(id(trace))
        if entry is None or entry[0] is not trace:
            entry = (trace, {})
            self._trace_fps[id(trace)] = entry
            while len(self._trace_fps) > 4096:
                self._trace_fps.pop(next(iter(self._trace_fps)))
        digest = entry[1].get(cards)
        if digest is None:
            digest = records_fingerprint(list(trace), self.databases, cards,
                                         key_cache=self.featurization_cache)
            entry[1][cards] = digest
        return digest

    def graphs(self, trace, cards):
        """Featurized graphs for a trace, keyed on *content* fingerprint.

        Equal traces — re-generated workloads, subsets, unpickled copies —
        share one graph list even across distinct objects (the former
        ``id(trace)`` key could be recycled by the allocator after a trace
        was GC'd, serving another trace's graphs).  With a store attached,
        graph lists persist across sessions.
        """
        key = self.trace_fingerprint(trace, cards)
        if key not in self._graphs:
            built, store_key = None, None
            if self.store is not None:
                # Through ArtifactStore.key so STORE_VERSION bumps orphan
                # graph lists like every other kind.
                store_key = self.store.key("graphs", key.hex())
                built = self.store.load("graphs", store_key, fingerprint=key)
            if built is None:
                built = featurize_records(
                    list(trace), self.databases, cards=cards,
                    estimator_cache=self.estimator_cache,
                    feat_cache=self.featurization_cache)
                if self.store is not None:
                    self.store.save("graphs", store_key, built,
                                    fingerprint=key)
            self._graphs[key] = built
        return self._graphs[key]

    def runtimes(self, trace):
        return np.array([r.runtime_ms for r in trace])

    # ------------------------------------------------------------------
    def train_zero_shot(self, traces, cards="exact", config=None):
        """Train a zero-shot model on the given traces (graphs cached).

        With a store attached, the trained model is persisted keyed on the
        content fingerprint of its training records plus the training
        config — a later session (or a forked experiment worker) hydrates
        it instead of re-training.
        """
        config = config or self.config.training_config
        store_key = None
        if self.store is not None:
            records = [r for trace in traces for r in trace]
            fingerprint = records_fingerprint(
                records, self.databases, cards,
                key_cache=self.featurization_cache)
            store_key = self.store.key("model", fingerprint.hex(),
                                       astuple(config))
            model = self.store.load("model", store_key,
                                    fingerprint=fingerprint)
            if model is not None:
                return model
        graphs, runtimes = [], []
        for trace in traces:
            graphs.extend(self.graphs(trace, cards))
            runtimes.append(self.runtimes(trace))
        model = ZeroShotCostModel.train(
            traces, self.databases, cards=cards, config=config,
            graphs=graphs, runtimes=np.concatenate(runtimes))
        if self.store is not None:
            self.store.save("model", store_key, model,
                            fingerprint=fingerprint)
        return model

    @property
    def main_model(self):
        """Zero-shot model pre-trained on the 19 non-IMDB databases."""
        if self._main_model is None:
            self._main_model = self.train_zero_shot(
                self.training_traces(), cards="exact")
        return self._main_model

    def evaluate_model(self, model, trace, cards):
        return model.evaluate(trace, self.databases, cards=cards,
                              graphs=self.graphs(trace, cards),
                              batch_cache=self.batch_cache)


_ARTIFACT_CACHE = {}


def artifacts_for(config: SuiteConfig):
    """Process-wide artifact cache (one entry per suite config).

    Forked experiment workers resolve their task's config through here and
    find the parent's instance (inherited copy-on-write); fresh processes
    build a new one wired to ``REPRO_ARTIFACT_DIR`` when set.
    """
    art = _ARTIFACT_CACHE.get(config)
    if art is None:
        art = Artifacts(config, store=store_from_env())
        _ARTIFACT_CACHE[config] = art
    return art


def register_artifacts(art: Artifacts):
    """Make ``art`` the process-wide instance for its config.

    Experiment functions call this before fanning tasks out, so workers
    operating on an explicitly constructed :class:`Artifacts` (tests,
    notebooks) see that exact instance after the fork.
    """
    _ARTIFACT_CACHE[art.config] = art
    return art


def get_artifacts(scale=None, seed=0):
    """Artifacts for the (env-selected) scale — the main entry point."""
    scale = scale or scale_from_env()
    return artifacts_for(SuiteConfig(scale=scale, seed=seed))
