"""Benchmark suite construction and artifact caching.

The experiments share expensive artifacts — the 20 databases, their executed
traces, featurized graphs, and the main zero-shot model trained on the 19
non-IMDB databases.  :func:`get_artifacts` memoizes them per scale so the
whole benchmark session builds each exactly once.

Scales (select with ``REPRO_SCALE`` or an explicit :class:`SuiteConfig`):

========  ==========  ===============  ======  ==========
scale     base rows   queries per DB   epochs  hidden dim
========  ==========  ===============  ======  ==========
tiny      1500        60               15      32
small     6000        150              30      48
medium    14000       250              50      64
========  ==========  ===============  ======  ==========
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from ..core import EstimatorCache, TrainingConfig, ZeroShotCostModel, featurize_records
from ..featurization import BatchCache, FeaturizationCache
from ..datagen import BENCHMARK_NAMES, make_benchmark_database
from ..workloads import (WorkloadConfig, WorkloadGenerator, generate_trace,
                         imdb_workload)

__all__ = ["SuiteConfig", "Artifacts", "get_artifacts", "scale_from_env"]

_SCALES = {
    "tiny": dict(base_rows=1500, queries_per_db=60, epochs=15, hidden_dim=32),
    "small": dict(base_rows=6000, queries_per_db=120, epochs=24, hidden_dim=48),
    "medium": dict(base_rows=14000, queries_per_db=250, epochs=50, hidden_dim=64),
}


def scale_from_env(default="small"):
    scale = os.environ.get("REPRO_SCALE", default)
    if scale not in _SCALES:
        raise ValueError(f"REPRO_SCALE must be one of {sorted(_SCALES)}")
    return scale


@dataclass(frozen=True)
class SuiteConfig:
    """Parameters of one benchmark-suite instantiation."""

    scale: str = "small"
    seed: int = 0
    max_joins: int = 4
    database_names: tuple = tuple(BENCHMARK_NAMES)

    @property
    def base_rows(self):
        return _SCALES[self.scale]["base_rows"]

    @property
    def queries_per_db(self):
        return _SCALES[self.scale]["queries_per_db"]

    @property
    def training_config(self):
        preset = _SCALES[self.scale]
        return TrainingConfig(hidden_dim=preset["hidden_dim"],
                              epochs=preset["epochs"], batch_size=64,
                              seed=self.seed)


class Artifacts:
    """Lazily built, cached benchmark artifacts."""

    def __init__(self, config: SuiteConfig):
        self.config = config
        self._databases = None
        self._traces = {}
        self._imdb_eval = {}
        self._graphs = {}
        self._main_model = None
        self.estimator_cache = EstimatorCache(sample_size=1024,
                                              seed=config.seed)
        # Evaluations reuse the cached graph lists from self.graphs(), so
        # batches built for one experiment serve every later one.
        self.batch_cache = BatchCache(max_entries=256)
        # Content-keyed graph cache: per-cardinality-mode evaluations and
        # equal-but-regenerated plans skip featurization entirely.
        self.featurization_cache = FeaturizationCache(max_entries=16384)

    # ------------------------------------------------------------------
    @property
    def databases(self):
        if self._databases is None:
            self._databases = {
                name: make_benchmark_database(name, self.config.base_rows)
                for name in self.config.database_names
            }
        return self._databases

    @property
    def training_names(self):
        """The 19 databases used for pre-training (all but IMDB)."""
        return [n for n in self.config.database_names if n != "imdb"]

    # ------------------------------------------------------------------
    def trace(self, db_name, mode="standard", n=None, seed_offset=0,
              max_joins=None):
        """Standard/complex/index workload trace for one database (cached)."""
        key = (db_name, mode, n, seed_offset, max_joins)
        if key not in self._traces:
            db = self.databases[db_name]
            config = WorkloadConfig(
                mode="standard" if mode == "index" else mode,
                max_joins=max_joins if max_joins is not None
                else self.config.max_joins)
            generator = WorkloadGenerator(
                db, config,
                seed=self.config.seed + seed_offset
                + 1000 * self.config.database_names.index(db_name))
            queries = generator.generate(n or self.config.queries_per_db)
            self._traces[key] = generate_trace(
                db, queries, seed=self.config.seed,
                index_mode=(mode == "index"))
        return self._traces[key]

    def training_traces(self, mode="standard", max_joins=None):
        return [self.trace(name, mode=mode, max_joins=max_joins)
                for name in self.training_names]

    def imdb_eval_trace(self, workload_name):
        """Named IMDB evaluation workload executed on the IMDB database."""
        if workload_name not in self._imdb_eval:
            db = self.databases["imdb"]
            queries = imdb_workload(db, workload_name)
            self._imdb_eval[workload_name] = generate_trace(
                db, queries, seed=self.config.seed)
        return self._imdb_eval[workload_name]

    # ------------------------------------------------------------------
    def graphs(self, trace, cards):
        """Featurized graphs for a trace, cached per (trace, card source).

        The list memo keeps repeated lookups free; the fingerprint cache
        underneath additionally serves *equal* plans across different trace
        objects (re-generated workloads, subsets) without re-featurizing.
        """
        key = (id(trace), cards)
        if key not in self._graphs:
            self._graphs[key] = featurize_records(
                list(trace), self.databases, cards=cards,
                estimator_cache=self.estimator_cache,
                feat_cache=self.featurization_cache)
        return self._graphs[key]

    def runtimes(self, trace):
        return np.array([r.runtime_ms for r in trace])

    # ------------------------------------------------------------------
    def train_zero_shot(self, traces, cards="exact", config=None):
        """Train a zero-shot model on the given traces (graphs cached)."""
        config = config or self.config.training_config
        graphs, runtimes = [], []
        for trace in traces:
            graphs.extend(self.graphs(trace, cards))
            runtimes.append(self.runtimes(trace))
        return ZeroShotCostModel.train(
            traces, self.databases, cards=cards, config=config,
            graphs=graphs, runtimes=np.concatenate(runtimes))

    @property
    def main_model(self):
        """Zero-shot model pre-trained on the 19 non-IMDB databases."""
        if self._main_model is None:
            self._main_model = self.train_zero_shot(
                self.training_traces(), cards="exact")
        return self._main_model

    def evaluate_model(self, model, trace, cards):
        return model.evaluate(trace, self.databases, cards=cards,
                              graphs=self.graphs(trace, cards),
                              batch_cache=self.batch_cache)


_ARTIFACT_CACHE = {}


def get_artifacts(scale=None, seed=0):
    """Process-wide artifact cache (one entry per scale/seed)."""
    scale = scale or scale_from_env()
    key = (scale, seed)
    if key not in _ARTIFACT_CACHE:
        _ARTIFACT_CACHE[key] = Artifacts(SuiteConfig(scale=scale, seed=seed))
    return _ARTIFACT_CACHE[key]
