"""Disk-backed artifact store for the benchmark suite.

The expensive experiment artifacts — generated databases, executed traces,
featurized graph lists, per-table SPNs and trained models — are pure
functions of the suite configuration and the content they derive from.
This module persists them under ``REPRO_ARTIFACT_DIR`` so a *second*
benchmark session warm-starts from disk instead of regenerating,
re-executing, re-featurizing, relearning and re-training everything.

Keying and validation:

* Every entry is addressed by a **content key**: a BLAKE2 digest of the
  generating configuration (suite scale/seed, workload parameters) plus a
  store-format version.  Different configurations can never collide.
* Every entry additionally records an **input fingerprint** — the digest of
  what the artifact was derived *from* (e.g. a trace records its database's
  row-count fingerprint; an SPN records its table's full
  :meth:`~repro.storage.Table.content_fingerprint`; a model records the
  :func:`~repro.featurization.records_fingerprint` of its training traces).
  On load the caller passes the fingerprint it currently expects; a
  mismatch means the upstream artifact changed (regenerated database,
  different datagen code) and the stale entry is discarded and rebuilt —
  never silently reused.
* Every payload carries a **checksum header**: a 16-byte BLAKE2 digest of
  the pickled payload, written ahead of it.  A read verifies the digest
  before unpickling, so bit rot and torn writes are detected even when the
  damaged bytes would still unpickle "successfully".
* Unreadable/corrupt entries (truncated files, checksum mismatches,
  unpicklable payloads) are **discarded and rebuilt**.  By default the file
  is deleted; callers that must never destroy forensic evidence — the
  serving registry's checkpoint payloads — pass
  ``on_corrupt="quarantine"``, which moves the damaged file into
  ``<root>/quarantine/<kind>/`` instead (see
  :meth:`ArtifactStore.quarantine`).

Hits and misses are mirrored into the :mod:`repro.perfstats` counters
(``store.hit.<kind>`` / ``store.miss.<kind>``; corrupt entries additionally
bump ``store.corrupt.<kind>``), which the warm-start smoke test asserts on.
Writes are atomic (temp file + rename), so concurrent experiment workers
sharing one store directory cannot corrupt entries.  Reads pass through the
``store.read`` injection point of :mod:`repro.robustness.faults`, so chaos
schedules can deterministically corrupt or fail any load.

Store kinds now: ``database``, ``trace``, ``graphs``, ``spn``, ``model``
(benchmark suite), plus the serving registry's ``deploy`` (content-addressed
model checkpoint bytes) and ``manifest`` (per-model version/promotion state;
the atomic rename is what makes promote/rollback atomic).

Wipe the directory whenever featurization, workload generation or the
storage engine changes semantically — the store versions its format
(``STORE_VERSION``) but intentionally does not fingerprint the code.
"""

from __future__ import annotations

import os
import pickle
from hashlib import blake2b
from pathlib import Path

from .. import perfstats
from ..robustness import faults

__all__ = ["ArtifactStore", "store_from_env", "STORE_VERSION"]

# Bump to orphan every existing entry (format or semantic change).
# 2: payloads gained the 16-byte checksum header.
STORE_VERSION = 2

_CHECKSUM_BYTES = 16


class ArtifactStore:
    """Content-keyed pickle store under one root directory."""

    def __init__(self, root):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.corrupt = 0

    # ------------------------------------------------------------------
    @staticmethod
    def key(*parts):
        """Hex content key from reprs of the generating configuration."""
        payload = repr((STORE_VERSION,) + parts).encode()
        return blake2b(payload, digest_size=16).hexdigest()

    def _path(self, kind, key):
        return self.root / kind / f"{key}.pkl"

    # ------------------------------------------------------------------
    def load(self, kind, key, fingerprint=None, on_corrupt="delete"):
        """The stored value, or ``None`` on miss/corruption/staleness.

        ``fingerprint`` is compared against the input fingerprint recorded
        at :meth:`save` time; a mismatch discards the entry (stale upstream
        artifact) instead of returning it.  ``on_corrupt`` decides what
        happens to an entry whose checksum or pickle is broken:
        ``"delete"`` (default) unlinks it so the rebuild overwrites
        cleanly, ``"quarantine"`` moves it aside for inspection — never a
        blind delete.
        """
        path = self._path(kind, key)
        try:
            with open(path, "rb") as handle:
                raw = handle.read()
        except FileNotFoundError:
            return self._miss(kind)
        except OSError:
            return self._discard(kind, key, on_corrupt)
        raw = faults.corrupt("store.read", raw, keys=(f"{kind}/{key}",))
        if len(raw) <= _CHECKSUM_BYTES:
            return self._discard(kind, key, on_corrupt)
        checksum, data = raw[:_CHECKSUM_BYTES], raw[_CHECKSUM_BYTES:]
        if blake2b(data, digest_size=_CHECKSUM_BYTES).digest() != checksum:
            return self._discard(kind, key, on_corrupt)
        try:
            stored_fingerprint, value = pickle.loads(data)
        except Exception:
            return self._discard(kind, key, on_corrupt)
        if fingerprint is not None and stored_fingerprint != fingerprint:
            path.unlink(missing_ok=True)
            return self._miss(kind)
        self.hits += 1
        perfstats.increment(f"store.hit.{kind}")
        return value

    def contains(self, kind, key):
        """Whether an entry exists on disk (no load, no hit/miss counting).

        Content-addressed writers (the serving registry's checkpoint
        payloads) use this to skip rewriting byte-identical entries.
        """
        return self._path(kind, key).exists()

    def save(self, kind, key, value, fingerprint=None):
        """Persist ``value`` atomically under ``(kind, key)``."""
        path = self._path(kind, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        data = pickle.dumps((fingerprint, value),
                            protocol=pickle.HIGHEST_PROTOCOL)
        checksum = blake2b(data, digest_size=_CHECKSUM_BYTES).digest()
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        with open(tmp, "wb") as handle:
            handle.write(checksum)
            handle.write(data)
        os.replace(tmp, path)
        return value

    def quarantine(self, kind, key):
        """Move a (presumed damaged) entry into ``<root>/quarantine/``.

        Returns the quarantine path, or ``None`` when the entry does not
        exist.  The move is a rename, so the evidence bytes are preserved
        exactly; a numeric suffix keeps repeated quarantines of the same
        key from clobbering each other.
        """
        path = self._path(kind, key)
        if not path.exists():
            return None
        qdir = self.root / "quarantine" / kind
        qdir.mkdir(parents=True, exist_ok=True)
        target = qdir / path.name
        suffix = 0
        while target.exists():
            suffix += 1
            target = qdir / f"{path.name}.{suffix}"
        os.replace(path, target)
        perfstats.increment(f"store.quarantine.{kind}")
        return target

    def _discard(self, kind, key, on_corrupt):
        self.corrupt += 1
        perfstats.increment(f"store.corrupt.{kind}")
        if on_corrupt == "quarantine":
            self.quarantine(kind, key)
        else:
            self._path(kind, key).unlink(missing_ok=True)
        return self._miss(kind)

    def _miss(self, kind):
        self.misses += 1
        perfstats.increment(f"store.miss.{kind}")
        return None

    # ------------------------------------------------------------------
    def stats(self):
        return {"hits": self.hits, "misses": self.misses,
                "corrupt": self.corrupt}

    def __repr__(self):
        return f"ArtifactStore({str(self.root)!r})"


def store_from_env(env="REPRO_ARTIFACT_DIR"):
    """An :class:`ArtifactStore` rooted at ``$REPRO_ARTIFACT_DIR``, or None."""
    root = os.environ.get(env)
    return ArtifactStore(root) if root else None
