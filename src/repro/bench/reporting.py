"""ASCII reporting for benchmark experiments (tables and bar charts).

Experiment tables are printed to stdout *and* appended to a report file
(``REPRO_REPORT_FILE``, default ``experiment_report.txt`` in the working
directory) so the regenerated paper tables survive pytest's output capture.
"""

from __future__ import annotations

import os

__all__ = ["format_table", "format_bars", "print_experiment"]


def _fmt(value):
    if isinstance(value, float):
        if value >= 1000:
            return f"{value:,.0f}"
        if value >= 10:
            return f"{value:.1f}"
        return f"{value:.2f}"
    return str(value)


def format_table(rows, columns=None, title=None):
    """Render dict rows as a fixed-width ASCII table."""
    if not rows:
        return "(no rows)"
    columns = columns or list(rows[0])
    cells = [[_fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [max(len(col), *(len(r[i]) for r in cells))
              for i, col in enumerate(columns)]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(col.ljust(w) for col, w in zip(columns, widths))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells:
        lines.append(" | ".join(value.ljust(w) for value, w in zip(row, widths)))
    return "\n".join(lines)


def format_bars(values, width=40, title=None):
    """Horizontal ASCII bar chart for a ``{label: value}`` mapping."""
    if not values:
        return "(no data)"
    peak = max(values.values()) or 1.0
    label_width = max(len(str(k)) for k in values)
    lines = [title] if title else []
    for label, value in values.items():
        bar = "#" * max(1, int(width * value / peak))
        lines.append(f"{str(label).ljust(label_width)} | {bar} {_fmt(float(value))}")
    return "\n".join(lines)


def print_experiment(title, body):
    banner = "=" * max(len(title), 30)
    text = f"\n{banner}\n{title}\n{banner}\n{body}\n"
    print(text, flush=True)
    report_path = os.environ.get("REPRO_REPORT_FILE", "experiment_report.txt")
    if report_path:
        with open(report_path, "a") as report:
            report.write(text)
