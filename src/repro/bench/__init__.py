"""Experiment harness: benchmark suite, cached artifacts (in-memory and
disk-backed via ``REPRO_ARTIFACT_DIR``), deterministic parallel experiment
execution, the experiment functions regenerating every evaluation
table/figure, and ASCII reporting."""

from .suite import (SuiteConfig, Artifacts, get_artifacts, artifacts_for,
                    register_artifacts, scale_from_env)
from .store import ArtifactStore, store_from_env
from .parallel import parallel_map, worker_count
from .reporting import format_table, format_bars, print_experiment
from .experiments import (
    exp_fig1_motivation, exp_fig5_zero_shot_accuracy,
    exp_fig6_vs_workload_driven, exp_fig7_job_full, exp_fig8_updates,
    exp_fig9_join_drift, exp_table3_distributed, exp_sec74_physical_design,
    exp_fig10a_amortization, exp_fig10b_throughput, exp_fig11_ablation,
    exp_fig12_num_databases,
)

__all__ = [
    "SuiteConfig", "Artifacts", "get_artifacts", "artifacts_for",
    "register_artifacts", "scale_from_env",
    "ArtifactStore", "store_from_env", "parallel_map", "worker_count",
    "format_table", "format_bars", "print_experiment",
    "exp_fig1_motivation", "exp_fig5_zero_shot_accuracy",
    "exp_fig6_vs_workload_driven", "exp_fig7_job_full", "exp_fig8_updates",
    "exp_fig9_join_drift", "exp_table3_distributed",
    "exp_sec74_physical_design", "exp_fig10a_amortization",
    "exp_fig10b_throughput", "exp_fig11_ablation", "exp_fig12_num_databases",
]
