"""Deterministic multiprocessing fan-out for independent experiment tasks.

The expensive experiments are embarrassingly parallel: fig5 trains 20
leave-one-out models, fig12 sweeps database counts, fig6 trains per-count
baseline models — every task is a pure function of (suite config, task
parameters) with all randomness behind explicit seeds.  :func:`parallel_map`
fans such tasks out over forked worker processes and returns results in
task order, so the output is **bit-identical** to running each task serially
from the same process state.

Workers are started with the ``fork`` method: they inherit the parent's
artifact caches copy-on-write (databases, traces, featurized graphs and the
main model materialized before the fan-out are simply *there*), and hydrate
anything else from the shared disk :class:`~repro.bench.store.ArtifactStore`
when ``REPRO_ARTIFACT_DIR`` is set.  Task functions must be module-level
(picklable by reference) and should resolve their artifacts through
:func:`repro.bench.suite.artifacts_for` with the config carried in the task
tuple.

Worker-side cache warm-up (featurization entries, DeepDB estimators) stays
in the worker — it does not flow back to the parent.  Results do: only the
returned row dicts / model payloads cross the process boundary.

``REPRO_PARALLEL`` controls the fan-out: unset uses ``os.cpu_count()``
workers, an integer pins the worker count, and ``0``/``1`` force serial
execution (useful for debugging and for the determinism tests' reference
runs).  Platforms without ``fork`` run serially as well.
"""

from __future__ import annotations

import multiprocessing
import os

from .. import perfstats

__all__ = ["parallel_map", "worker_count"]


def worker_count(n_tasks):
    """Effective worker count for ``n_tasks`` under ``REPRO_PARALLEL``."""
    env = os.environ.get("REPRO_PARALLEL")
    if env is not None:
        try:
            workers = int(env)
        except ValueError:
            raise ValueError("REPRO_PARALLEL must be an integer") from None
    else:
        workers = os.cpu_count() or 1
    return max(1, min(workers, n_tasks))


def parallel_map(fn, tasks, processes=None):
    """``[fn(t) for t in tasks]`` fanned out over forked workers, in order.

    Falls back to the serial loop when only one worker is effective or the
    platform lacks ``fork``; either way the results (and their order) are
    identical.
    """
    tasks = list(tasks)
    processes = (worker_count(len(tasks)) if processes is None
                 else max(1, min(processes, len(tasks))))
    if processes <= 1 or len(tasks) <= 1:
        perfstats.increment("parallel.serial_tasks", len(tasks))
        return [fn(task) for task in tasks]
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:
        perfstats.increment("parallel.serial_tasks", len(tasks))
        return [fn(task) for task in tasks]
    perfstats.increment("parallel.fanout")
    perfstats.increment("parallel.worker_tasks", len(tasks))
    with context.Pool(processes) as pool:
        # chunksize=1: tasks are few and heavy; order is preserved by map.
        return pool.map(fn, tasks, chunksize=1)
