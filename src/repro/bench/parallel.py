"""Deterministic multiprocessing fan-out for independent experiment tasks.

The expensive experiments are embarrassingly parallel: fig5 trains 20
leave-one-out models, fig12 sweeps database counts, fig6 trains per-count
baseline models — every task is a pure function of (suite config, task
parameters) with all randomness behind explicit seeds.  :func:`parallel_map`
fans such tasks out over forked worker processes and returns results in
task order, so the output is **bit-identical** to running each task serially
from the same process state.

Workers are started with the ``fork`` method: they inherit the parent's
artifact caches copy-on-write (databases, traces, featurized graphs and the
main model materialized before the fan-out are simply *there*), and hydrate
anything else from the shared disk :class:`~repro.bench.store.ArtifactStore`
when ``REPRO_ARTIFACT_DIR`` is set.  Task functions must be module-level
(picklable by reference) and should resolve their artifacts through
:func:`repro.bench.suite.artifacts_for` with the config carried in the task
tuple.

Worker-side cache warm-up (featurization entries, DeepDB estimators) stays
in the worker — it does not flow back to the parent.  Results do: only the
returned row dicts / model payloads cross the process boundary.

``REPRO_PARALLEL`` controls the fan-out: unset uses ``os.cpu_count()``
workers, an integer pins the worker count, and ``0``/``1`` force serial
execution (useful for debugging and for the determinism tests' reference
runs).  Platforms without ``fork`` run serially as well.

Besides the one-shot :func:`parallel_map` fan-out, :class:`WorkerProcess`
runs a *long-lived* forked worker connected to the parent by a duplex pipe
— the building block of the serving fleet (:mod:`repro.serving.fleet`),
where workers outlive any single request and are restarted on death.
"""

from __future__ import annotations

import multiprocessing
import os
import time

from .. import perfstats
from ..obs.metrics import REGISTRY

__all__ = ["parallel_map", "worker_count", "WorkerProcess"]


def worker_count(n_tasks):
    """Effective worker count for ``n_tasks`` under ``REPRO_PARALLEL``."""
    env = os.environ.get("REPRO_PARALLEL")
    if env is not None:
        try:
            workers = int(env)
        except ValueError:
            raise ValueError("REPRO_PARALLEL must be an integer") from None
    else:
        workers = os.cpu_count() or 1
    return max(1, min(workers, n_tasks))


def parallel_map(fn, tasks, processes=None):
    """``[fn(t) for t in tasks]`` fanned out over forked workers, in order.

    Falls back to the serial loop when only one worker is effective or the
    platform lacks ``fork``; either way the results (and their order) are
    identical.
    """
    tasks = list(tasks)
    processes = (worker_count(len(tasks)) if processes is None
                 else max(1, min(processes, len(tasks))))
    if processes <= 1 or len(tasks) <= 1:
        perfstats.increment("parallel.serial_tasks", len(tasks))
        return [fn(task) for task in tasks]
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:
        perfstats.increment("parallel.serial_tasks", len(tasks))
        return [fn(task) for task in tasks]
    perfstats.increment("parallel.fanout")
    perfstats.increment("parallel.worker_tasks", len(tasks))
    start = time.perf_counter()
    with context.Pool(processes) as pool:
        # chunksize=1: tasks are few and heavy; order is preserved by map.
        results = pool.map(fn, tasks, chunksize=1)
    REGISTRY.observe("parallel.map_ms", (time.perf_counter() - start) * 1e3)
    return results


class WorkerProcess:
    """A long-lived forked worker connected to the parent by a duplex pipe.

    ``target(conn, *args)`` runs in the child with its end of the pipe;
    ``args`` reach it copy-on-write through the fork (nothing is pickled),
    so heavyweight state — databases, a registry root path — costs no
    serialization.  The parent talks through :attr:`conn` (``send`` /
    ``poll`` / ``recv``) and watches :attr:`sentinel` (selectable alongside
    the pipe via ``multiprocessing.connection.wait``) for death.

    Protocol and supervision policy belong to the caller: the fleet router
    defines its own message framing, detects a dead worker through the
    sentinel / ``EOFError`` on the pipe, and calls :meth:`restart` to fork
    a replacement on a fresh pipe.  Workers are daemons — they can never
    outlive the parent.

    Fork hygiene: each end of the pipe is closed in the process that does
    not own it (the child closes the parent end, the parent closes the
    child end right after the fork), so a dead peer is observable as
    ``EOFError``/``BrokenPipeError`` instead of a silent hang.

    Raises :class:`RuntimeError` on platforms without the ``fork`` start
    method.
    """

    def __init__(self, target, args=(), name=None):
        self._target = target
        self._args = tuple(args)
        self.name = name or getattr(target, "__name__", "worker")
        self.process = None
        self.conn = None
        self.restarts = 0

    # ------------------------------------------------------------------
    def start(self):
        if self.process is not None and self.process.is_alive():
            raise RuntimeError(f"worker {self.name!r} already running")
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:
            raise RuntimeError(
                "WorkerProcess requires the fork start method") from None
        parent_conn, child_conn = context.Pipe(duplex=True)
        self.process = context.Process(
            target=self._child_main, args=(child_conn, parent_conn),
            name=self.name, daemon=True)
        self.process.start()
        child_conn.close()  # the parent's copy of the child end
        self.conn = parent_conn
        return self

    def _child_main(self, child_conn, parent_conn):
        parent_conn.close()  # the child's copy of the parent end
        self._target(child_conn, *self._args)

    def restart(self, args=None):
        """Fork a replacement worker on a fresh pipe (old pipe closed).

        ``args`` optionally replaces the child arguments for the new fork
        (and any later restarts) — the fleet uses this to bring hang-killed
        workers back up *without* the fault schedule that wedged them.
        """
        if args is not None:
            self._args = tuple(args)
        if self.conn is not None:
            self.conn.close()
            self.conn = None
        if self.process is not None:
            if self.process.is_alive():
                self.process.terminate()
            self.process.join(timeout=5.0)
        self.process = None
        self.restarts += 1
        return self.start()

    # ------------------------------------------------------------------
    @property
    def alive(self):
        return self.process is not None and self.process.is_alive()

    @property
    def sentinel(self):
        """Selectable handle that becomes ready when the process exits."""
        return self.process.sentinel

    @property
    def exitcode(self):
        return None if self.process is None else self.process.exitcode

    def send(self, message):
        self.conn.send(message)

    def poll(self, timeout=0):
        return self.conn.poll(timeout)

    def recv(self):
        return self.conn.recv()

    def recv_timeout(self, timeout):
        """Timed receive: ``(True, message)`` or ``(False, None)``.

        A timeout is not an error — the caller decides whether silence
        means "idle" or "hung" (the fleet's liveness supervisor does the
        latter).  A dead peer still surfaces as ``EOFError``/``OSError``,
        exactly as with a bare :meth:`recv`.
        """
        if self.conn.poll(timeout):
            return True, self.conn.recv()
        return False, None

    # ------------------------------------------------------------------
    def stop(self, timeout=5.0):
        """Close the pipe (the worker loop sees EOF) and reap the process.

        A worker that does not exit within ``timeout`` is terminated; stop
        never hangs.
        """
        if self.conn is not None:
            self.conn.close()
            self.conn = None
        if self.process is not None:
            self.process.join(timeout=timeout)
            if self.process.is_alive():
                self.process.terminate()
                self.process.join(timeout=timeout)
            self.process = None

    def __repr__(self):
        return (f"WorkerProcess({self.name!r}, alive={self.alive}, "
                f"restarts={self.restarts})")
