"""One experiment function per evaluation table/figure of the paper.

Every function takes the shared :class:`~repro.bench.suite.Artifacts` and
returns the rows it printed, so benchmark tests can assert the qualitative
*shape* of each result (who wins, rough factors, crossovers) while
EXPERIMENTS.md records paper-vs-measured numbers.

The model-training sweeps (fig5's 20 leave-one-out models, fig6's per-count
baselines, fig12's database-count rotation) fan their independent tasks out
over :func:`~repro.bench.parallel.parallel_map`: shared artifacts are
materialized *before* the fork (so workers inherit them copy-on-write or
hydrate them from the artifact store), every task is a pure seeded function
of its parameters, and results come back in task order — bit-identical to
the serial loop (``REPRO_PARALLEL=1`` forces the serial path).
"""

from __future__ import annotations

import time
from dataclasses import replace

import numpy as np

from ..baselines import (E2EModel, FlattenedPlanModel, MSCNModel,
                         ScaledOptimizerModel)
from ..core import (EstimatorCache, TrainingConfig, ZeroShotCostModel,
                    featurize_records)
from ..datagen import grow_database
from ..distributed import (distributed_storage_formats,
                           generate_distributed_trace)
from ..workloads import WorkloadConfig, WorkloadGenerator, imdb_workload
from .parallel import parallel_map
from .reporting import format_table, print_experiment
from .suite import artifacts_for, register_artifacts

__all__ = [
    "exp_fig1_motivation", "exp_fig5_zero_shot_accuracy",
    "exp_fig6_vs_workload_driven", "exp_fig7_job_full", "exp_fig8_updates",
    "exp_fig9_join_drift", "exp_table3_distributed",
    "exp_sec74_physical_design", "exp_fig10a_amortization",
    "exp_fig10b_throughput", "exp_fig11_ablation", "exp_fig12_num_databases",
]

IMDB_EVAL_WORKLOADS = ("scale", "synthetic", "job_light")


def _query_counts(pool_size):
    """Geometric training-query counts up to the pool size."""
    counts = [c for c in (25, 50, 100, 200, 400) if c < pool_size]
    return counts + [pool_size]


# ----------------------------------------------------------------------
# Figure 5: zero-shot accuracy across all 20 unseen databases
# ----------------------------------------------------------------------
def _fig5_task(task):
    """One leave-one-out rotation: train on 19 databases, evaluate the 20th."""
    config, held_out, eval_queries, epochs = task
    art = artifacts_for(config)
    training_config = replace(art.config.training_config, epochs=epochs)
    train_traces = [art.trace(n) for n in art.config.database_names
                    if n != held_out]
    model = art.train_zero_shot(train_traces, cards="exact",
                                config=training_config)
    scaled = ScaledOptimizerModel().fit(train_traces)
    eval_trace = art.trace(held_out, seed_offset=7, n=eval_queries)
    return {
        "database": held_out,
        "scaled_optimizer": scaled.evaluate(eval_trace)["median"],
        "zero_shot_deepdb": art.evaluate_model(model, eval_trace,
                                               "deepdb")["median"],
        "zero_shot_exact": art.evaluate_model(model, eval_trace,
                                              "exact")["median"],
    }


def exp_fig5_zero_shot_accuracy(art, eval_queries=80):
    """Leave-one-database-out across the benchmark (median Q-errors)."""
    # 20 models are trained here; a reduced epoch budget keeps the rotation
    # affordable without changing the ordering of the methods.
    epochs = max(12, art.config.training_config.epochs // 2)
    register_artifacts(art)
    # Shared inputs live in the parent before the fork: every worker reuses
    # the same executed traces and featurized training graphs.
    for name in art.config.database_names:
        art.graphs(art.trace(name), "exact")
    rows = parallel_map(_fig5_task,
                        [(art.config, held_out, eval_queries, epochs)
                         for held_out in art.config.database_names])
    print_experiment("Figure 5 — Zero-Shot Generalization across Databases",
                     format_table(rows))
    return rows


# ----------------------------------------------------------------------
# Figure 1 / Figure 6: zero-shot vs workload-driven on IMDB
# ----------------------------------------------------------------------
def _fig6_count_task(task):
    """All per-count model trainings + evaluations for one query budget.

    ``scaled_medians`` (count-independent) are computed once pre-fork and
    travel in the task tuple instead of refitting per worker.
    """
    config, count, workloads, scaled_medians = task
    art = artifacts_for(config)
    pool = art.trace("imdb", seed_offset=3)
    subset = pool[:count]
    hours = subset.total_execution_hours()
    zero_shot = art.main_model
    imdb_db = art.databases["imdb"]
    e2e = E2EModel(imdb_db, hidden_dim=art.config.training_config.hidden_dim,
                   seed=0).fit(subset, epochs=40)
    mscn = MSCNModel(imdb_db, hidden_dim=art.config.training_config.hidden_dim,
                     seed=0).fit(subset, epochs=40)
    few_shot = zero_shot.fine_tune(
        list(subset), art.databases, cards="exact",
        graphs=art.graphs(subset, "exact"), runtimes=art.runtimes(subset))
    rows = []
    for workload in workloads:
        eval_trace = art.imdb_eval_trace(workload)
        zs_deepdb = art.evaluate_model(zero_shot, eval_trace, "deepdb")
        zs_exact = art.evaluate_model(zero_shot, eval_trace, "exact")
        fs_deepdb = art.evaluate_model(few_shot, eval_trace, "deepdb")
        fs_exact = art.evaluate_model(few_shot, eval_trace, "exact")
        e2e_metrics = e2e.evaluate(eval_trace)
        mscn_metrics = mscn.evaluate(eval_trace)
        rows.append({
            "workload": workload,
            "train_queries": count,
            "exec_hours": hours,
            "scaled_optimizer": scaled_medians[workload],
            "mscn": mscn_metrics["median"],
            "e2e": e2e_metrics["median"],
            "zero_shot_deepdb": zs_deepdb["median"],
            "zero_shot_exact": zs_exact["median"],
            "few_shot_deepdb": fs_deepdb["median"],
            "few_shot_exact": fs_exact["median"],
            "e2e_p95": e2e_metrics["p95"],
            "mscn_p95": mscn_metrics["p95"],
            "zero_shot_deepdb_p95": zs_deepdb["p95"],
            "few_shot_deepdb_p95": fs_deepdb["p95"],
        })
    return rows


def exp_fig6_vs_workload_driven(art, workloads=IMDB_EVAL_WORKLOADS):
    """Q-error vs number of IMDB training queries for all model families."""
    pool = art.trace("imdb", seed_offset=3)   # workload-driven training pool
    counts = _query_counts(len(pool))
    register_artifacts(art)
    # Materialize everything the per-count workers share before the fork:
    # training traces, the pre-trained zero-shot model, the training pool's
    # graphs (fine-tune subsets hit their plan fingerprints), and the
    # evaluation traces with both cardinality encodings.
    train_traces = art.training_traces()
    art.main_model
    art.graphs(pool, "exact")
    scaled = ScaledOptimizerModel().fit(train_traces)
    scaled_medians = {}
    for workload in workloads:
        eval_trace = art.imdb_eval_trace(workload)
        art.graphs(eval_trace, "deepdb")
        art.graphs(eval_trace, "exact")
        scaled_medians[workload] = scaled.evaluate(eval_trace)["median"]
    per_count = parallel_map(_fig6_count_task,
                             [(art.config, count, tuple(workloads),
                               scaled_medians)
                              for count in counts])
    rows = [row for count_rows in per_count for row in count_rows]
    print_experiment(
        "Figure 6 — Workload-Driven vs Zero-Shot (IMDB)",
        format_table(rows, columns=["workload", "train_queries", "exec_hours",
                                    "scaled_optimizer", "mscn", "e2e",
                                    "zero_shot_deepdb", "zero_shot_exact",
                                    "few_shot_deepdb", "few_shot_exact"]))
    return rows


def exp_fig1_motivation(art):
    """Figure 1: error vs observed workload hours (motivation figure)."""
    rows = exp_fig6_vs_workload_driven(art, workloads=("synthetic",))
    fig1 = [{
        "observed_hours": row["exec_hours"],
        "workload_driven_e2e": row["e2e"],
        "zero_shot": row["zero_shot_deepdb"],
        "few_shot": row["few_shot_deepdb"],
    } for row in rows]
    print_experiment("Figure 1 — Cost Estimation Errors on IMDB",
                     format_table(fig1))
    return fig1


# ----------------------------------------------------------------------
# Figure 7: complex queries (JOB-Full)
# ----------------------------------------------------------------------
def exp_fig7_job_full(art):
    """Complex workload: strings/disjunctions/IN; optimizer-card fallback."""
    train_traces = art.training_traces(mode="complex")
    model = art.train_zero_shot(train_traces, cards="exact")
    scaled = ScaledOptimizerModel().fit(train_traces)
    eval_trace = art.imdb_eval_trace("job_full")
    imdb_db = art.databases["imdb"]
    pool = art.trace("imdb", mode="complex", seed_offset=5)
    counts = _query_counts(len(pool))

    rows = []
    for count in counts:
        subset = pool[:count]
        e2e = E2EModel(imdb_db, hidden_dim=art.config.training_config.hidden_dim,
                       seed=0).fit(subset, epochs=40)
        few_shot = model.fine_tune(
            list(subset), art.databases, cards="exact",
            graphs=art.graphs(subset, "exact"), runtimes=art.runtimes(subset))
        rows.append({
            "train_queries": count,
            "scaled_optimizer": scaled.evaluate(eval_trace)["median"],
            "e2e": e2e.evaluate(eval_trace)["median"],
            "zero_shot_est_cards": art.evaluate_model(model, eval_trace,
                                                      "optimizer")["median"],
            "zero_shot_exact": art.evaluate_model(model, eval_trace,
                                                  "exact")["median"],
            "few_shot_est_cards": art.evaluate_model(few_shot, eval_trace,
                                                     "optimizer")["median"],
            "few_shot_exact": art.evaluate_model(few_shot, eval_trace,
                                                 "exact")["median"],
        })
    print_experiment("Figure 7 — JOB-Full (complex) Workload on IMDB",
                     format_table(rows))
    return rows


# ----------------------------------------------------------------------
# Figure 8: robustness to updates
# ----------------------------------------------------------------------
def exp_fig8_updates(art, factors=(1, 2, 4, 8)):
    """Grow IMDB after training; no model retraining (only DeepDB refresh)."""
    from ..workloads import generate_trace

    imdb_base = art.databases["imdb"]
    base_pool = art.trace("imdb", seed_offset=3)
    e2e = E2EModel(imdb_base, hidden_dim=art.config.training_config.hidden_dim,
                   seed=0).fit(base_pool, epochs=40)
    mscn = MSCNModel(imdb_base, hidden_dim=art.config.training_config.hidden_dim,
                     seed=0).fit(base_pool, epochs=40)
    zero_shot = art.main_model
    scaled = ScaledOptimizerModel().fit(art.training_traces())
    queries = imdb_workload(imdb_base, "synthetic")

    rows = []
    for factor in factors:
        db = imdb_base if factor == 1 else grow_database(imdb_base, factor)
        dbs = {**art.databases, "imdb": db}
        trace = generate_trace(db, queries, seed=art.config.seed)
        # Data-driven models are refreshed from the data (no queries needed).
        cache = EstimatorCache(sample_size=1024, seed=art.config.seed)
        rows.append({
            "size_pct": 100 * factor,
            "scaled_optimizer": scaled.evaluate(trace)["median"],
            "mscn": mscn.evaluate(trace)["median"],
            "e2e": e2e.evaluate(trace)["median"],
            "zero_shot_deepdb": zero_shot.evaluate(
                trace, dbs, cards="deepdb",
                estimator_cache=cache)["median"],
            "zero_shot_exact": zero_shot.evaluate(trace, dbs,
                                                  cards="exact")["median"],
        })
    print_experiment("Figure 8 — Robustness w.r.t. Updates (IMDB grown)",
                     format_table(rows))
    return rows


# ----------------------------------------------------------------------
# Figure 9: generalization to larger joins
# ----------------------------------------------------------------------
def exp_fig9_join_drift(art, few_shot_counts=(25, 50, 100)):
    """Train on small joins, test on larger joins; few-shot repairs drift."""
    panels = []
    for train_max, test_min in ((2, 3), (3, 4)):
        small_traces = [trace.filter(lambda r: r.n_joins <= train_max)
                        for trace in art.training_traces()]
        small_model = art.train_zero_shot(small_traces, cards="exact")
        full_model = art.main_model
        eval_trace = art.trace("imdb", seed_offset=11, max_joins=5,
                               n=art.config.queries_per_db).filter(
            lambda r: r.n_joins >= test_min)
        tune_pool = art.trace("imdb", seed_offset=13, max_joins=5,
                              n=art.config.queries_per_db).filter(
            lambda r: r.n_joins >= test_min)

        def med(model):
            return model.evaluate(eval_trace, art.databases,
                                  cards="exact")["median"]

        row = {
            "panel": f"train<= {train_max}-way / test {test_min}+-way",
            "eval_queries": len(eval_trace),
            "small_joins": med(small_model),
            "full": med(full_model),
        }
        for count in few_shot_counts:
            subset = tune_pool[:count]
            if len(subset) == 0:
                row[f"few_shot_{count}"] = float("nan")
                continue
            tuned = small_model.fine_tune(list(subset), art.databases,
                                          cards="exact")
            row[f"few_shot_{count}"] = med(tuned)
        panels.append(row)
    print_experiment("Figure 9 — Generalization to Larger Joins",
                     format_table(panels))
    return panels


# ----------------------------------------------------------------------
# Table 3: distributed cloud data warehouse
# ----------------------------------------------------------------------
def exp_table3_distributed(art):
    """Zero-shot on the simulated cloud DW vs its optimizer's scaled costs."""
    train_traces = []
    formats = {}
    for name in art.training_names:
        db = art.databases[name]
        config = WorkloadConfig(max_joins=art.config.max_joins)
        queries = WorkloadGenerator(db, config,
                                    seed=art.config.seed + 17).generate(
            art.config.queries_per_db // 2)
        train_traces.append(generate_distributed_trace(
            db, queries, seed=art.config.seed))
        formats.update(distributed_storage_formats(db))

    records = [r for t in train_traces for r in t]
    graphs = featurize_records(records, art.databases, cards="exact",
                               storage_formats=formats)
    runtimes = np.array([r.runtime_ms for r in records])
    model = ZeroShotCostModel.train(train_traces, art.databases,
                                    config=art.config.training_config,
                                    graphs=graphs, runtimes=runtimes)
    cloud_optimizer = ScaledOptimizerModel().fit(train_traces)

    imdb = art.databases["imdb"]
    imdb_formats = distributed_storage_formats(imdb)
    cache = EstimatorCache(sample_size=1024, seed=art.config.seed)
    rows = []
    for workload in IMDB_EVAL_WORKLOADS:
        queries = imdb_workload(imdb, workload)
        trace = generate_distributed_trace(imdb, queries, seed=art.config.seed)
        row = {"workload": workload,
               "cloud_dw_optimizer": cloud_optimizer.evaluate(trace)["median"]}
        for cards, label in (("deepdb", "zero_shot_deepdb"),
                             ("exact", "zero_shot_exact")):
            eval_graphs = featurize_records(list(trace), art.databases,
                                            cards=cards, estimator_cache=cache,
                                            storage_formats=imdb_formats)
            row[label] = model.evaluate(trace, art.databases, cards=cards,
                                        graphs=eval_graphs)["median"]
        rows.append(row)
    print_experiment("Table 3 — Distributed Cloud Data Warehouse (IMDB)",
                     format_table(rows))
    return rows


# ----------------------------------------------------------------------
# §7.4: physical designs (index workloads)
# ----------------------------------------------------------------------
def exp_sec74_physical_design(art):
    """Unseen physical designs: index-mode traces, three cardinality sources."""
    train_traces = [art.trace(name, mode="index")
                    for name in art.training_names]
    model = art.train_zero_shot(train_traces, cards="exact")
    eval_trace = art.trace("imdb", mode="index", seed_offset=19)
    rows = [{
        "cards": cards,
        "median_q_error": art.evaluate_model(model, eval_trace, cards)["median"],
    } for cards in ("exact", "deepdb", "optimizer")]
    print_experiment("§7.4 — Physical Designs (unseen indexes on IMDB)",
                     format_table(rows))
    return rows


# ----------------------------------------------------------------------
# Figure 10a: training-query amortization
# ----------------------------------------------------------------------
def exp_fig10a_amortization(art, max_unseen=20):
    """Training queries required to support N unseen databases."""
    per_db = art.config.queries_per_db
    zero_shot_one_time = len(art.training_names) * per_db
    rows = [{
        "unseen_databases": n,
        "e2e_training_queries": n * per_db,
        "zero_shot_training_queries": zero_shot_one_time,
    } for n in range(1, max_unseen + 1)]
    print_experiment("Figure 10a — Required Training Queries (amortization)",
                     format_table(rows[::4] + [rows[-1]]))
    return rows


# ----------------------------------------------------------------------
# Figure 10b: training and inference throughput
# ----------------------------------------------------------------------
def exp_fig10b_throughput(art, epochs=3):
    """Plans/second for training and inference, per model family."""
    trace = art.trace("imdb", seed_offset=3)
    imdb = art.databases["imdb"]
    hidden = art.config.training_config.hidden_dim
    n = len(trace)

    def timed(fn):
        start = time.perf_counter()
        fn()
        return time.perf_counter() - start

    rows = []
    mscn = MSCNModel(imdb, hidden_dim=hidden, seed=0)
    train_s = timed(lambda: mscn.fit(trace, epochs=epochs))
    infer_s = timed(lambda: mscn.predict(list(trace)))
    rows.append({"model": "mscn", "train_plans_per_s": n * epochs / train_s,
                 "inference_plans_per_s": n / infer_s})

    e2e = E2EModel(imdb, hidden_dim=hidden, seed=0)
    train_s = timed(lambda: e2e.fit(trace, epochs=epochs))
    infer_s = timed(lambda: e2e.predict(list(trace)))
    rows.append({"model": "e2e", "train_plans_per_s": n * epochs / train_s,
                 "inference_plans_per_s": n / infer_s})

    # Fairness: E2E/MSCN featurize inside fit/predict, so the zero-shot
    # timings include featurization as well (exact cards: annotation is a
    # lookup; deepdb adds the data-driven estimator's inference).
    config = TrainingConfig(hidden_dim=hidden, epochs=epochs,
                            validation_fraction=0.0)
    train_s = timed(lambda: ZeroShotCostModel.train(
        [trace], art.databases, cards="exact", config=config))
    model = art.main_model
    cache = EstimatorCache(sample_size=1024, seed=art.config.seed)
    cache.get(art.databases["imdb"])  # build once; not part of inference
    for cards in ("deepdb", "exact"):
        infer_s = timed(lambda: model.predict_records(
            list(trace), art.databases, cards=cards, estimator_cache=cache))
        rows.append({"model": f"zero_shot_{cards}",
                     "train_plans_per_s": n * epochs / train_s,
                     "inference_plans_per_s": n / infer_s})
    print_experiment("Figure 10b — Training and Inference Throughput",
                     format_table(rows))
    return rows


# ----------------------------------------------------------------------
# Figure 11: ablation (flattened plans, cardinality sources)
# ----------------------------------------------------------------------
def exp_fig11_ablation(art):
    """Graph encoding vs flattened vectors; effect of cardinality source."""
    train_traces = art.training_traces()
    flattened = FlattenedPlanModel(cards="exact", seed=0, n_estimators=100,
                                   max_depth=4)
    flattened.fit(train_traces, art.databases)
    model = art.main_model
    rows = []
    for workload in IMDB_EVAL_WORKLOADS:
        eval_trace = art.imdb_eval_trace(workload)
        rows.append({
            "workload": workload,
            "flattened_plans": flattened.evaluate(eval_trace,
                                                  art.databases)["median"],
            "zero_shot_est_cards": art.evaluate_model(model, eval_trace,
                                                      "optimizer")["median"],
            "zero_shot_deepdb": art.evaluate_model(model, eval_trace,
                                                   "deepdb")["median"],
            "zero_shot_exact": art.evaluate_model(model, eval_trace,
                                                  "exact")["median"],
        })
    print_experiment("Figure 11 — Ablation Study (IMDB workloads)",
                     format_table(rows))
    return rows


# ----------------------------------------------------------------------
# Figure 12: number of training databases
# ----------------------------------------------------------------------
def _fig12_task(task):
    """Train on a database subset, evaluate on the IMDB workloads."""
    config, train_names = task
    art = artifacts_for(config)
    subset = [art.trace(name) for name in train_names]
    model = art.train_zero_shot(subset, cards="exact")
    row = {"n_databases": len(train_names)}
    for workload in IMDB_EVAL_WORKLOADS:
        eval_trace = art.imdb_eval_trace(workload)
        row[f"{workload}_deepdb"] = art.evaluate_model(
            model, eval_trace, "deepdb")["median"]
        row[f"{workload}_exact"] = art.evaluate_model(
            model, eval_trace, "exact")["median"]
    return row


def exp_fig12_num_databases(art, db_counts=(1, 3, 5, 10, 15, 19)):
    """Generalization error vs number of training databases."""
    rng = np.random.default_rng(art.config.seed)
    order = rng.permutation(len(art.training_names))
    register_artifacts(art)
    # Shared pre-fork materialization: training traces + graphs (subsets
    # reuse them) and the evaluation traces under both cardinality modes.
    for trace in art.training_traces():
        art.graphs(trace, "exact")
    for workload in IMDB_EVAL_WORKLOADS:
        eval_trace = art.imdb_eval_trace(workload)
        art.graphs(eval_trace, "deepdb")
        art.graphs(eval_trace, "exact")
    tasks = []
    for count in db_counts:
        count = min(count, len(art.training_names))
        tasks.append((art.config,
                      tuple(art.training_names[i] for i in order[:count])))
    rows = parallel_map(_fig12_task, tasks)
    print_experiment("Figure 12 — Generalization by #Training Databases",
                     format_table(rows))
    return rows
