"""Process-wide dispatch counters for the engine's fast paths.

Every fast-path entry point (vectorized featurization, batched cardinality
annotation, fingerprint-cache hits, graph-free inference) bumps a named
counter here, and the reference/loop implementations bump their own.  The
perf harness records a snapshot into ``BENCH_engine.json`` and the tier-1
smoke test asserts that exercising the public API dispatches to the fast
paths — a regression that silently falls back to a loop implementation
fails the suite instead of only showing up as a slow benchmark.

Since the observability plane landed, this module is a thin facade over
:data:`repro.obs.metrics.REGISTRY`: every ``increment`` is a typed counter
in the registry, so the serving/fleet/controller counters show up next to
the latency histograms in one mergeable snapshot.  The facade keeps the
original ``increment``/``snapshot``/``reset`` API and a live ``counters``
mapping view, so existing callers never notice.

All operations are thread-safe.  The old implementation iterated a live
``defaultdict`` in ``snapshot`` while serving threads incremented it,
which could raise ``RuntimeError: dictionary changed size during
iteration`` under the fleet's free-threaded load; the registry copies
under its lock instead.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.obs.metrics import REGISTRY

__all__ = ["counters", "increment", "snapshot", "reset"]


class _CounterView(Mapping):
    """Read-only live view of the registry's counters.

    Supports the mapping surface legacy callers use (``items()``,
    ``[name]``, ``get``, iteration, ``len``).  Iteration works on a copy
    taken under the registry lock, so concurrent increments cannot raise
    mid-iteration.
    """

    def __getitem__(self, name):
        # defaultdict-compatible: missing names read as 0.
        return REGISTRY.counter_values([name])[name]

    def __iter__(self):
        return iter(REGISTRY.counter_values())

    def __len__(self):
        return len(REGISTRY.counter_values())

    def items(self):
        return REGISTRY.counter_values().items()

    def clear(self):
        REGISTRY.reset()


counters = _CounterView()


def increment(name, n=1):
    """Bump counter ``name`` by ``n`` (thread-safe)."""
    REGISTRY.increment(name, n)


def snapshot(names=None):
    """A plain-dict copy of the counters (optionally restricted to ``names``).

    Missing names read as 0.  The copy is taken under the registry lock,
    so it is a consistent point-in-time view even under concurrent
    increments.
    """
    return REGISTRY.counter_values(names)


def reset():
    """Clear all counters (test isolation)."""
    REGISTRY.reset()
