"""Process-wide dispatch counters for the engine's fast paths.

Every fast-path entry point (vectorized featurization, batched cardinality
annotation, fingerprint-cache hits, graph-free inference) bumps a named
counter here, and the reference/loop implementations bump their own.  The
perf harness records a snapshot into ``BENCH_engine.json`` and the tier-1
smoke test asserts that exercising the public API dispatches to the fast
paths — a regression that silently falls back to a loop implementation
fails the suite instead of only showing up as a slow benchmark.

Counters are plain module state: cheap (one dict increment per *graph*, not
per node), process-wide, and reset only when a test asks for a clean slate.
"""

from __future__ import annotations

from collections import defaultdict

__all__ = ["counters", "increment", "snapshot", "reset"]

counters = defaultdict(int)


def increment(name, n=1):
    """Bump counter ``name`` by ``n``."""
    counters[name] += n


def snapshot(names=None):
    """A plain-dict copy of the counters (optionally restricted to ``names``)."""
    if names is None:
        return dict(counters)
    return {name: counters[name] for name in names}


def reset():
    """Clear all counters (test isolation)."""
    counters.clear()
