"""Flattened-plan baseline (Ganapathi et al.; the Fig. 11 ablation).

A query plan is reduced to a flat vector with two entries per physical
operator type — how often it occurs and the (log) sum of its output
cardinalities — and a gradient-boosted regressor predicts the runtime.
Interactions between operators cannot be expressed, which is exactly why the
paper's graph encoding beats it.
"""

from __future__ import annotations

import numpy as np

from ..cardest import annotate_cardinalities
from ..ml import GradientBoostedTrees
from ..nn import q_error_metrics
from ..optimizer import OPERATOR_NAMES

__all__ = ["flatten_plan", "FlattenedPlanModel"]


def flatten_plan(plan, cards):
    """Flat vector: per operator type, [count, log1p(sum of cardinalities)]."""
    counts = np.zeros(len(OPERATOR_NAMES))
    sums = np.zeros(len(OPERATOR_NAMES))
    for node in plan.iter_nodes():
        index = OPERATOR_NAMES.index(node.op_name)
        counts[index] += 1.0
        sums[index] += max(cards.get(id(node), node.est_rows), 0.0)
    return np.concatenate([counts, np.log1p(sums)])


class FlattenedPlanModel:
    """GBDT over flattened plan vectors (transferable but structure-blind)."""

    def __init__(self, cards="exact", n_estimators=150, max_depth=5, seed=0):
        self.cards = cards
        self._gbdt = GradientBoostedTrees(n_estimators=n_estimators,
                                          max_depth=max_depth, seed=seed)
        self.fitted = False

    def _featurize(self, records, dbs, estimator_cache=None):
        rows = []
        for record in records:
            db = dbs[record.db_name]
            estimator = (estimator_cache.get(db)
                         if estimator_cache is not None and self.cards == "deepdb"
                         else None)
            card_map = annotate_cardinalities(db, record.plan, self.cards,
                                              estimator=estimator)
            rows.append(flatten_plan(record.plan, card_map))
        return np.stack(rows)

    def fit(self, traces, dbs, estimator_cache=None):
        if not isinstance(traces, (list, tuple)):
            traces = [traces]
        records = [r for trace in traces for r in trace]
        features = self._featurize(records, dbs, estimator_cache)
        runtimes = np.array([r.runtime_ms for r in records])
        self._gbdt.fit(features, np.log(np.maximum(runtimes, 1e-3)))
        self.fitted = True
        return self

    def predict(self, records, dbs, estimator_cache=None):
        if not self.fitted:
            raise RuntimeError("model is not fitted")
        records = list(records)
        features = self._featurize(records, dbs, estimator_cache)
        return np.exp(self._gbdt.predict(features))

    def evaluate(self, trace, dbs, estimator_cache=None):
        records = list(trace)
        predictions = self.predict(records, dbs, estimator_cache)
        actuals = np.array([r.runtime_ms for r in records])
        return q_error_metrics(predictions, actuals)
