"""Shared Q-error training loop for the neural baseline models."""

from __future__ import annotations

import numpy as np

from ..featurization import TargetScaler
from ..nn import Adam, QErrorLoss, clip_grad_norm, no_grad

__all__ = ["fit_neural_regressor", "predict_neural_regressor"]


def fit_neural_regressor(model, build_batch, n_samples, runtimes_ms,
                         epochs=60, learning_rate=1e-3, batch_size=32,
                         weight_decay=1e-5, grad_clip=5.0, seed=0):
    """Generic trainer: ``build_batch(indices)`` feeds the model's forward.

    Returns ``(target_scaler, history)``; the model is trained in place.
    """
    runtimes_ms = np.asarray(runtimes_ms, dtype=np.float64)
    if n_samples != len(runtimes_ms):
        raise ValueError("sample count and runtimes must align")
    if n_samples == 0:
        raise ValueError("cannot train on an empty dataset")
    rng = np.random.default_rng(seed)
    target_scaler = TargetScaler().fit(runtimes_ms)
    true_log = np.log(np.maximum(runtimes_ms, 1e-3))
    loss_fn = QErrorLoss()
    optimizer = Adam(model.parameters(), lr=learning_rate,
                     weight_decay=weight_decay)

    # Materialize batches once, shuffle only the batch order per epoch
    # (batch construction is python-level work that would dominate training).
    order = rng.permutation(n_samples)
    batches = []
    for start in range(0, n_samples, batch_size):
        indices = order[start:start + batch_size]
        batches.append((build_batch(indices), true_log[indices]))

    history = []
    for _ in range(epochs):
        model.train()
        losses = []
        for batch_index in rng.permutation(len(batches)):
            batch, targets = batches[batch_index]
            optimizer.zero_grad()
            output = model(batch)
            pred_log = output * target_scaler.std + target_scaler.mean
            loss = loss_fn(pred_log, targets)
            loss.backward()
            clip_grad_norm(model.parameters(), grad_clip)
            optimizer.step()
            losses.append(loss.item())
        history.append(float(np.mean(losses)))
    model.eval()
    return target_scaler, history


def predict_neural_regressor(model, build_batch, n_samples, target_scaler,
                             batch_size=256):
    """Predicted runtimes (ms)."""
    if n_samples == 0:
        return np.array([])
    model.eval()
    outputs = []
    with no_grad():
        for start in range(0, n_samples, batch_size):
            indices = np.arange(start, min(start + batch_size, n_samples))
            outputs.append(model(build_batch(indices)).numpy())
    return target_scaler.to_runtime_ms(np.concatenate(outputs))
