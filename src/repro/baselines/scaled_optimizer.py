"""The "Scaled Optimizer Costs" baseline (Section 7.1).

Postgres reports abstract cost units, so the paper fits a simple linear
model mapping optimizer costs to runtimes, trained on the same traces as the
zero-shot models.  We fit in log-log space, which keeps predictions positive
and is much more robust for the Q-error metric than a raw linear fit.
"""

from __future__ import annotations

import numpy as np

from ..ml import LinearRegression
from ..nn import q_error_metrics

__all__ = ["ScaledOptimizerModel"]


class ScaledOptimizerModel:
    """log(runtime) ~ a * log(optimizer cost) + b."""

    def __init__(self):
        self._model = LinearRegression()
        self.fitted = False

    @staticmethod
    def _features(records):
        return np.log1p(np.array([r.plan.est_cost for r in records]))

    def fit(self, traces):
        """Fit on one trace or a list of traces (e.g. the 19 training DBs)."""
        if not isinstance(traces, (list, tuple)):
            traces = [traces]
        records = [r for trace in traces for r in trace]
        if not records:
            raise ValueError("no training records")
        runtimes = np.array([r.runtime_ms for r in records])
        self._model.fit(self._features(records), np.log(np.maximum(runtimes, 1e-3)))
        self.fitted = True
        return self

    def predict(self, records):
        if not self.fitted:
            raise RuntimeError("model is not fitted")
        records = list(records)
        return np.exp(self._model.predict(self._features(records)))

    def evaluate(self, trace):
        records = list(trace)
        predictions = self.predict(records)
        actuals = np.array([r.runtime_ms for r in records])
        return q_error_metrics(predictions, actuals)
