"""E2E workload-driven baseline (Sun & Li, VLDB 2019).

Featurizes the *physical plan tree* and aggregates it bottom-up with a
neural model — like the zero-shot architecture — but with the
**non-transferable** encodings the paper describes in Section 3.1.1:
one-hot table identities, one-hot filter columns and normalized literal
values, all defined against the vocabulary of one specific database.  The
model therefore has to be trained from scratch, with freshly executed
queries, for every database (the cost the zero-shot approach removes).
"""

from __future__ import annotations

import numpy as np

from ..featurization import FeatureScalers, QueryGraph, make_batch
from ..nn import MLP, Module, Tensor, concat, q_error_metrics, scatter_sum
from ..optimizer import OPERATOR_NAMES
from ..sql import Comparison, PredOp, iter_predicate_nodes
from ._training import fit_neural_regressor, predict_neural_regressor

__all__ = ["E2EFeaturizer", "E2EModel"]

_PRED_OPS = list(PredOp)


class E2EFeaturizer:
    """Database-specific plan featurization (one-hot tables/columns/literals)."""

    def __init__(self, db):
        self.db = db
        self.tables = sorted(db.schema.table_names)
        self.columns = sorted((t, c) for t in self.tables
                              for c in db.table(t).columns)
        self._table_index = {t: i for i, t in enumerate(self.tables)}
        self._column_index = {tc: i for i, tc in enumerate(self.columns)}

    @property
    def feature_dim(self):
        return (4 + len(OPERATOR_NAMES) + len(self.tables)
                + len(self.columns) + len(_PRED_OPS) + 2)

    def _normalized_literal(self, node: Comparison):
        """Literal value scaled into [0, 1] by the column's domain."""
        stats = self.db.column_stats(node.table, node.column)
        column = self.db.column(node.table, node.column)
        value = node.literal
        if isinstance(value, (list, tuple)):
            return 0.5
        if isinstance(value, str):
            if column.dictionary is None or value not in column.dictionary:
                return 0.5
            return column.dictionary.index(value) / max(len(column.dictionary), 1)
        if value is None or not np.isfinite(stats.min_value):
            return 0.5
        span = stats.max_value - stats.min_value
        if span <= 0:
            return 0.5
        return float(np.clip((value - stats.min_value) / span, 0.0, 1.0))

    def node_features(self, node):
        base = np.array([
            np.log1p(max(node.est_rows, 0.0)),
            np.log1p(node.child_rows_product()),
            np.log1p(max(node.width, 0.0)),
            float(node.workers),
        ])
        op_vec = np.zeros(len(OPERATOR_NAMES))
        op_vec[OPERATOR_NAMES.index(node.op_name)] = 1.0
        table_vec = np.zeros(len(self.tables))
        if node.table is not None:
            table_vec[self._table_index[node.table]] = 1.0
        column_vec = np.zeros(len(self.columns))
        pred_vec = np.zeros(len(_PRED_OPS))
        literals = []
        for pred in iter_predicate_nodes(node.filter_predicate):
            pred_vec[_PRED_OPS.index(pred.op)] += 1.0
            if isinstance(pred, Comparison):
                column_vec[self._column_index[(pred.table, pred.column)]] = 1.0
                literals.append(self._normalized_literal(pred))
        literal_stats = np.array([
            float(np.mean(literals)) if literals else 0.5,
            float(len(literals)),
        ])
        return np.concatenate([base, op_vec, table_vec, column_vec, pred_vec,
                               literal_stats])

    def plan_graph(self, plan) -> QueryGraph:
        """Plan tree as a graph of 'plan' nodes with db-specific features."""
        graph = QueryGraph()

        def visit(node):
            child_ids = [visit(child) for child in node.children]
            node_id = graph.add_node("plan", self.node_features(node))
            for child_id in child_ids:
                graph.add_edge(child_id, node_id)
            return node_id

        graph.root = visit(plan)
        graph.validate()
        return graph


class _TreeRegressor(Module):
    """Encoder + child-sum message passing + estimator over plan trees."""

    def __init__(self, in_dim, hidden_dim, seed):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.hidden_dim = hidden_dim
        self.encoder = MLP(in_dim, [hidden_dim], hidden_dim, rng=rng)
        self.combiner = MLP(2 * hidden_dim, [hidden_dim], hidden_dim, rng=rng)
        self.estimator = MLP(hidden_dim, [hidden_dim], 1, rng=rng)

    def forward(self, batch):
        initial = self.encoder(Tensor(batch.features["plan"]))
        updated = Tensor(np.zeros((batch.n_nodes, self.hidden_dim)))
        for level_groups in batch.levels:
            for group in level_groups:
                n_group = len(group.node_indices)
                if group.edge_children.size:
                    child_sum = scatter_sum(
                        updated.gather_rows(group.edge_children),
                        group.edge_parent_slots, n_group)
                else:
                    child_sum = Tensor(np.zeros((n_group, self.hidden_dim)))
                own = initial.gather_rows(group.node_indices)
                new_states = self.combiner(concat([child_sum, own], axis=1))
                updated = updated + scatter_sum(new_states, group.node_indices,
                                                batch.n_nodes)
        return self.estimator(updated.gather_rows(batch.roots)).reshape(-1)


class E2EModel:
    """Per-database workload-driven cost model over physical plans."""

    def __init__(self, db, hidden_dim=64, seed=0):
        self.db = db
        self.featurizer = E2EFeaturizer(db)
        self.model = _TreeRegressor(self.featurizer.feature_dim, hidden_dim,
                                    seed)
        self.feature_scalers = None
        self.target_scaler = None
        self.seed = seed

    def _graphs(self, records):
        return [self.featurizer.plan_graph(r.plan) for r in records]

    def fit(self, trace, epochs=60, learning_rate=1e-3, batch_size=32):
        records = list(trace)
        if any(r.db_name != self.db.name for r in records):
            raise ValueError("E2E models are bound to a single database")
        graphs = self._graphs(records)
        self.feature_scalers = FeatureScalers().fit(graphs)
        runtimes = np.array([r.runtime_ms for r in records])

        def build_batch(indices):
            return make_batch([graphs[i] for i in indices],
                              self.feature_scalers)

        self.target_scaler, self.history = fit_neural_regressor(
            self.model, build_batch, len(graphs), runtimes, epochs=epochs,
            learning_rate=learning_rate, batch_size=batch_size,
            seed=self.seed)
        return self

    def predict(self, records):
        if self.target_scaler is None:
            raise RuntimeError("model is not fitted")
        records = list(records)
        graphs = self._graphs(records)

        def build_batch(indices):
            return make_batch([graphs[i] for i in indices],
                              self.feature_scalers)

        return predict_neural_regressor(self.model, build_batch, len(graphs),
                                        self.target_scaler)

    def evaluate(self, trace):
        records = list(trace)
        predictions = self.predict(records)
        actuals = np.array([r.runtime_ms for r in records])
        return q_error_metrics(predictions, actuals)
