"""MSCN workload-driven baseline (Kipf et al., CIDR 2019).

Multi-set convolutional network: a query is encoded as three *sets* — tables,
joins, predicates — each element embedded by a set-specific MLP and averaged;
the pooled vectors feed a final output network.  The encoding is oblivious
of the physical plan (no operators, no widths, no parallelism), which is why
MSCN plateaus above E2E on runtime prediction (Fig. 6/10 of the paper), and
it is non-transferable: table / join / column identities are one-hot against
one database's vocabulary.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nn import MLP, Module, Tensor, concat, q_error_metrics, scatter_sum
from ..sql import Comparison, PredOp, iter_predicate_nodes
from ._training import fit_neural_regressor, predict_neural_regressor

__all__ = ["MSCNFeaturizer", "MSCNModel"]

_PRED_OPS = list(PredOp)


@dataclass
class _SetBatch:
    """Stacked set elements with query segment ids, per set kind."""

    tables: np.ndarray
    table_segments: np.ndarray
    joins: np.ndarray
    join_segments: np.ndarray
    predicates: np.ndarray
    predicate_segments: np.ndarray
    n_queries: int


class MSCNFeaturizer:
    """Database-specific set encodings for queries."""

    def __init__(self, db):
        self.db = db
        self.tables = sorted(db.schema.table_names)
        self._table_index = {t: i for i, t in enumerate(self.tables)}
        self.joins = [(fk.child_table, fk.child_column,
                       fk.parent_table, fk.parent_column)
                      for fk in db.schema.foreign_keys]
        self._join_index = {j: i for i, j in enumerate(self.joins)}
        self.columns = sorted((t, c) for t in self.tables
                              for c in db.table(t).columns)
        self._column_index = {tc: i for i, tc in enumerate(self.columns)}

    @property
    def table_dim(self):
        return len(self.tables) + 1

    @property
    def join_dim(self):
        return max(len(self.joins), 1)

    @property
    def predicate_dim(self):
        return len(self.columns) + len(_PRED_OPS) + 1

    def table_elements(self, query):
        rows = []
        for table in query.tables:
            vec = np.zeros(self.table_dim)
            vec[self._table_index[table]] = 1.0
            vec[-1] = np.log1p(self.db.table_stats(table).reltuples)
            rows.append(vec)
        return rows

    def join_elements(self, query):
        rows = []
        for join in query.joins:
            vec = np.zeros(self.join_dim)
            key = (join.child_table, join.child_column,
                   join.parent_table, join.parent_column)
            index = self._join_index.get(key)
            if index is not None:
                vec[index] = 1.0
            rows.append(vec)
        return rows

    def _normalized_literal(self, node):
        stats = self.db.column_stats(node.table, node.column)
        column = self.db.column(node.table, node.column)
        value = node.literal
        if isinstance(value, (list, tuple)) or value is None:
            return 0.5
        if isinstance(value, str):
            if column.dictionary is None or value not in column.dictionary:
                return 0.5
            return column.dictionary.index(value) / max(len(column.dictionary), 1)
        span = stats.max_value - stats.min_value
        if not np.isfinite(span) or span <= 0:
            return 0.5
        return float(np.clip((value - stats.min_value) / span, 0.0, 1.0))

    def predicate_elements(self, query):
        rows = []
        for predicate in query.filters.values():
            for node in iter_predicate_nodes(predicate):
                if not isinstance(node, Comparison):
                    continue
                vec = np.zeros(self.predicate_dim)
                vec[self._column_index[(node.table, node.column)]] = 1.0
                vec[len(self.columns) + _PRED_OPS.index(node.op)] = 1.0
                vec[-1] = self._normalized_literal(node)
                rows.append(vec)
        return rows

    def batch(self, queries) -> _SetBatch:
        def stack(element_lists, dim):
            rows, segments = [], []
            for q_idx, elements in enumerate(element_lists):
                for element in elements:
                    rows.append(element)
                    segments.append(q_idx)
            if rows:
                return np.stack(rows), np.array(segments, dtype=np.int64)
            return np.zeros((0, dim)), np.array([], dtype=np.int64)

        tables, t_seg = stack([self.table_elements(q) for q in queries],
                              self.table_dim)
        joins, j_seg = stack([self.join_elements(q) for q in queries],
                             self.join_dim)
        preds, p_seg = stack([self.predicate_elements(q) for q in queries],
                             self.predicate_dim)
        return _SetBatch(tables, t_seg, joins, j_seg, preds, p_seg,
                         n_queries=len(queries))


class _MSCNNet(Module):
    def __init__(self, table_dim, join_dim, predicate_dim, hidden_dim, seed):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.hidden_dim = hidden_dim
        self.table_mlp = MLP(table_dim, [hidden_dim], hidden_dim, rng=rng)
        self.join_mlp = MLP(join_dim, [hidden_dim], hidden_dim, rng=rng)
        self.predicate_mlp = MLP(predicate_dim, [hidden_dim], hidden_dim, rng=rng)
        self.output = MLP(3 * hidden_dim, [hidden_dim], 1, rng=rng)

    def _pool(self, mlp, elements, segments, n_queries):
        if len(elements) == 0:
            return Tensor(np.zeros((n_queries, self.hidden_dim)))
        hidden = mlp(Tensor(elements))
        summed = scatter_sum(hidden, segments, n_queries)
        counts = np.maximum(np.bincount(segments, minlength=n_queries), 1.0)
        return summed * Tensor(1.0 / counts[:, None])

    def forward(self, batch: _SetBatch):
        pooled = concat([
            self._pool(self.table_mlp, batch.tables, batch.table_segments,
                       batch.n_queries),
            self._pool(self.join_mlp, batch.joins, batch.join_segments,
                       batch.n_queries),
            self._pool(self.predicate_mlp, batch.predicates,
                       batch.predicate_segments, batch.n_queries),
        ], axis=1)
        return self.output(pooled).reshape(-1)


class MSCNModel:
    """Per-database set-based cost model (plan-oblivious)."""

    def __init__(self, db, hidden_dim=64, seed=0):
        self.db = db
        self.featurizer = MSCNFeaturizer(db)
        self.model = _MSCNNet(self.featurizer.table_dim,
                              self.featurizer.join_dim,
                              self.featurizer.predicate_dim,
                              hidden_dim, seed)
        self.target_scaler = None
        self.seed = seed

    def fit(self, trace, epochs=60, learning_rate=1e-3, batch_size=64):
        records = list(trace)
        if any(r.db_name != self.db.name for r in records):
            raise ValueError("MSCN models are bound to a single database")
        queries = [r.query for r in records]
        runtimes = np.array([r.runtime_ms for r in records])

        def build_batch(indices):
            return self.featurizer.batch([queries[i] for i in indices])

        self.target_scaler, self.history = fit_neural_regressor(
            self.model, build_batch, len(queries), runtimes, epochs=epochs,
            learning_rate=learning_rate, batch_size=batch_size, seed=self.seed)
        return self

    def predict(self, records):
        if self.target_scaler is None:
            raise RuntimeError("model is not fitted")
        queries = [r.query for r in records]

        def build_batch(indices):
            return self.featurizer.batch([queries[i] for i in indices])

        return predict_neural_regressor(self.model, build_batch, len(queries),
                                        self.target_scaler)

    def evaluate(self, trace):
        records = list(trace)
        predictions = self.predict(records)
        actuals = np.array([r.runtime_ms for r in records])
        return q_error_metrics(predictions, actuals)
