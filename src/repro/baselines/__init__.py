"""Baseline cost models: scaled optimizer costs, workload-driven E2E and
MSCN, and the flattened-plan + GBDT ablation."""

from .scaled_optimizer import ScaledOptimizerModel
from .flattened import FlattenedPlanModel, flatten_plan
from .e2e import E2EModel, E2EFeaturizer
from .mscn import MSCNModel, MSCNFeaturizer

__all__ = [
    "ScaledOptimizerModel",
    "FlattenedPlanModel", "flatten_plan",
    "E2EModel", "E2EFeaturizer",
    "MSCNModel", "MSCNFeaturizer",
]
