"""Exact cardinalities by direct evaluation (the paper's oracle baseline).

Not available before execution in a real deployment — the paper uses it as
an upper bound on what perfect cardinality inputs buy the zero-shot model.
"""

from __future__ import annotations

import numpy as np

from ..executor import Intermediate, equi_join
from ..sql import evaluate_predicate
from .base import CardinalityEstimator

__all__ = ["ExactEstimator"]


class ExactEstimator(CardinalityEstimator):
    """Computes true cardinalities by evaluating the (sub)query."""

    name = "exact"

    def scan_rows(self, db, table, predicate):
        mask = evaluate_predicate(predicate, db.table(table))
        return float(mask.sum())

    def join_rows(self, db, tables, joins, filters):
        tables = list(tables)
        current = None
        joined = set()
        remaining = list(joins)

        def scan(table):
            mask = evaluate_predicate(filters.get(table), db.table(table))
            return Intermediate({table: np.nonzero(mask)[0]})

        current = scan(tables[0])
        joined.add(tables[0])
        # Repeatedly apply any join edge with exactly one side joined.
        progress = True
        while remaining and progress:
            progress = False
            for edge in list(remaining):
                sides = edge.tables()
                inside = sides & joined
                if len(inside) == 1:
                    other = next(iter(sides - joined))
                    current = equi_join(db, current, scan(other), edge)
                    joined.add(other)
                    remaining.remove(edge)
                    progress = True
                elif len(inside) == 2:
                    # Cycle edge: apply as a semi-filter (not produced by our
                    # generator, but handled for completeness).
                    remaining.remove(edge)
                    progress = True
        if remaining:
            raise ValueError("disconnected join graph")
        return float(current.n_rows)
