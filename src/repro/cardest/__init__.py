"""Cardinality estimators: traditional (optimizer), data-driven (DeepDB-style),
and exact (executor oracle), plus plan annotation helpers."""

from .base import CardinalityEstimator
from .traditional import TraditionalEstimator
from .exact import ExactEstimator
from .spn import SPN, learn_spn, predicate_to_constraints, UnsupportedPredicate
from .datadriven import DataDrivenEstimator, spn_input_arrays
from .annotate import (annotate_cardinalities,
                       annotate_cardinalities_reference, CARD_SOURCES)

__all__ = [
    "CardinalityEstimator", "TraditionalEstimator", "ExactEstimator",
    "SPN", "learn_spn", "spn_input_arrays", "predicate_to_constraints",
    "UnsupportedPredicate",
    "DataDrivenEstimator", "annotate_cardinalities",
    "annotate_cardinalities_reference", "CARD_SOURCES",
]
