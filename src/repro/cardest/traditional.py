"""Traditional (Postgres-style) cardinality estimation.

Selectivity arithmetic over per-column histograms and MCV lists combined with
the independence assumption — cheap, always available, and systematically
wrong on correlated data, exactly as the paper describes ("simple statistics
are known to be often imprecise").
"""

from __future__ import annotations

import numpy as np

from ..sql import BooleanPredicate, Comparison, PredOp
from .base import CardinalityEstimator

__all__ = ["TraditionalEstimator"]

# Postgres-ish default selectivities for unestimatable cases.
_DEFAULT_EQ_SEL = 0.005
_DEFAULT_RANGE_SEL = 1.0 / 3.0
_DEFAULT_LIKE_SEL = 0.05


class TraditionalEstimator(CardinalityEstimator):
    """Histogram + MCV estimator with independence assumptions."""

    name = "optimizer"

    # ------------------------------------------------------------------
    # Single-column selectivities
    # ------------------------------------------------------------------
    def _eq_selectivity(self, stats, literal_value):
        if stats.mcv_values is not None and stats.mcv_values.size:
            matches = stats.mcv_values == literal_value
            if matches.any():
                return float(stats.mcv_fractions[matches][0])
        ndistinct = max(stats.ndistinct, 1)
        remaining = 1.0 - stats.null_frac
        if stats.mcv_fractions is not None and stats.mcv_fractions.size:
            remaining -= float(stats.mcv_fractions.sum())
            ndistinct = max(ndistinct - stats.mcv_values.size, 1)
        return max(remaining, 0.0) / ndistinct

    def _range_selectivity(self, stats, op, literal_value):
        bounds = stats.histogram_bounds
        if bounds is None or len(bounds) < 2:
            return _DEFAULT_RANGE_SEL
        position = np.searchsorted(bounds, literal_value, side="right")
        frac_below = position / len(bounds)
        # Linear interpolation inside the bucket.
        if 0 < position < len(bounds):
            lo, hi = bounds[position - 1], min(bounds[position], literal_value)
            span = bounds[position] - bounds[position - 1]
            if span > 0:
                frac_below += ((literal_value - lo) / span - 1.0) / len(bounds)
        frac_below = min(max(frac_below, 0.0), 1.0)
        if op in (PredOp.LT, PredOp.LEQ):
            sel = frac_below
        else:
            sel = 1.0 - frac_below
        return min(max(sel * (1.0 - stats.null_frac), 0.0), 1.0)

    def _comparison_selectivity(self, db, node: Comparison):
        stats = db.column_stats(node.table, node.column)
        if node.op == PredOp.IS_NULL:
            return stats.null_frac
        if node.op == PredOp.IS_NOT_NULL:
            return 1.0 - stats.null_frac

        if node.op == PredOp.EQ:
            literal = self._literal_as_number(db, node)
            if literal is None:
                return _DEFAULT_EQ_SEL
            return self._eq_selectivity(stats, literal)
        if node.op == PredOp.NEQ:
            literal = self._literal_as_number(db, node)
            if literal is None:
                return 1.0 - _DEFAULT_EQ_SEL
            return max(1.0 - stats.null_frac - self._eq_selectivity(stats, literal), 0.0)
        if node.op.is_range:
            literal = self._literal_as_number(db, node)
            if literal is None:
                return _DEFAULT_RANGE_SEL
            return self._range_selectivity(stats, node.op, literal)
        if node.op == PredOp.IN:
            literals = [self._value_to_number(db, node, v) for v in node.literal]
            sel = sum(self._eq_selectivity(stats, v)
                      for v in literals if v is not None)
            return min(sel, 1.0)
        if node.op in (PredOp.LIKE, PredOp.NOT_LIKE):
            # Postgres patterns: leading-wildcard patterns are unestimable;
            # use defaults scaled by pattern restrictiveness.
            sel = _DEFAULT_LIKE_SEL / (1.0 + node.literal.count("%"))
            if node.op == PredOp.NOT_LIKE:
                sel = 1.0 - sel
            return min(max(sel, 1e-5), 1.0)
        raise ValueError(f"unsupported operator {node.op}")

    def _literal_as_number(self, db, node):
        return self._value_to_number(db, node, node.literal)

    def _value_to_number(self, db, node, value):
        """Map a literal to the numeric domain used by the statistics."""
        if isinstance(value, (int, float)):
            return float(value)
        column = db.column(node.table, node.column)
        if column.dictionary is None:
            return None
        try:
            return float(column.dictionary.index(value))
        except ValueError:
            return None

    # ------------------------------------------------------------------
    # Predicate trees (independence assumption)
    # ------------------------------------------------------------------
    def predicate_selectivity(self, db, predicate):
        if predicate is None:
            return 1.0
        if isinstance(predicate, Comparison):
            return float(min(max(self._comparison_selectivity(db, predicate), 0.0), 1.0))
        if isinstance(predicate, BooleanPredicate):
            child_sels = [self.predicate_selectivity(db, c) for c in predicate.children]
            if predicate.op == PredOp.AND:
                sel = 1.0
                for s in child_sels:
                    sel *= s
                return sel
            # OR via inclusion-exclusion under independence.
            sel = 0.0
            for s in child_sels:
                sel = sel + s - sel * s
            return sel
        raise TypeError(f"unknown predicate {type(predicate)!r}")

    # ------------------------------------------------------------------
    # CardinalityEstimator interface
    # ------------------------------------------------------------------
    def scan_rows(self, db, table, predicate):
        base = db.table_stats(table).reltuples
        return max(base * self.predicate_selectivity(db, predicate), 1.0)

    def join_selectivity(self, db, join):
        """System-R style: 1 / max(ndv(child key), ndv(parent key))."""
        child = db.column_stats(join.child_table, join.child_column)
        parent = db.column_stats(join.parent_table, join.parent_column)
        ndv = max(child.ndistinct, parent.ndistinct, 1)
        return (1.0 - child.null_frac) / ndv

    def join_rows(self, db, tables, joins, filters):
        rows = 1.0
        for table in tables:
            rows *= self.scan_rows(db, table, filters.get(table))
        for join in joins:
            rows *= self.join_selectivity(db, join)
        return max(rows, 1.0)
