"""Common interface for cardinality estimators.

Three implementations mirror Table 2 of the paper:

* :class:`~repro.cardest.traditional.TraditionalEstimator` — histogram/MCV
  statistics with independence assumptions (what the optimizer uses),
* :class:`~repro.cardest.datadriven.DataDrivenEstimator` — DeepDB-style
  models learned from the data alone (no query executions),
* :class:`~repro.cardest.exact.ExactEstimator` — true cardinalities from the
  executor (the paper's upper-bound oracle).
"""

from __future__ import annotations

import abc

__all__ = ["CardinalityEstimator"]


class CardinalityEstimator(abc.ABC):
    """Estimates output cardinalities of scans and join subsets."""

    name = "abstract"

    @abc.abstractmethod
    def scan_rows(self, db, table, predicate):
        """Estimated rows produced by scanning ``table`` under ``predicate``."""

    @abc.abstractmethod
    def join_rows(self, db, tables, joins, filters):
        """Estimated rows of joining ``tables`` via ``joins`` under ``filters``.

        ``tables`` is an iterable of table names, ``joins`` the JoinEdges
        whose tables are all inside the subset, ``filters`` a mapping
        ``table -> predicate``.
        """

    def query_rows(self, db, query):
        """Estimated rows of the query's join result (before aggregation)."""
        if len(query.tables) == 1:
            table = query.tables[0]
            return self.scan_rows(db, table, query.filters.get(table))
        return self.join_rows(db, set(query.tables), list(query.joins),
                              dict(query.filters))
