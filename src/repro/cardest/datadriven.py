"""Data-driven cardinality estimation (the DeepDB stand-in).

Learned from the data only — no query executions — as required for zero-shot
compatibility (Table 2 of the paper).  Two cooperating components:

* per-table **SPNs** (:mod:`repro.cardest.spn`) for single-table conjunctive
  selectivities,
* per-FK-edge **fanout indexes** enabling correlated *join sampling*: a
  Horvitz-Thompson estimator walks the query's join tree, expanding child
  edges by sampling one child per match and weighting by the true fanout.
  Per-table predicates are then evaluated exactly on the sampled rows.

Like DeepDB, the estimator does not support disjunctions or string patterns;
those fall back to the traditional optimizer estimator (the fallback the
paper recommends in Section 3.4).  Training takes seconds — "usually in the
order of minutes" at paper scale — and can be refreshed cheaply after
updates (Fig. 8).

The estimator is the hot core of plan annotation, so the public entry points
run a **batched fast path** that is bit-identical to the recursive original:

* filter masks, SPN selectivities, scan estimates and parsed constraint
  sets are memoized per ``(table, predicate)`` in bounded LRU caches — a
  plan whose join nodes revisit the same scan predicates evaluates each of
  them exactly once (``prime_plan`` does that up front in one pass),
* the 1:N hop of :meth:`join_sample` resolves all fanouts with one batched
  ``searchsorted`` probe (:meth:`repro.storage.Index.eq_bounds_batch`) and
  draws all child picks with one array-``integers`` call, which numpy's
  ``Generator`` evaluates element-wise in order — consuming the *same RNG
  stream* as the original per-row loop, so estimates match bit-for-bit.

The original loop implementations remain as ``*_reference`` methods (the
executable spec the equivalence tests compare against).
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from ..sql import evaluate_predicate
from ..storage import Index
from .base import CardinalityEstimator
from .spn import UnsupportedPredicate, learn_spn, predicate_to_constraints
from .traditional import TraditionalEstimator

__all__ = ["DataDrivenEstimator", "spn_input_arrays"]

_UNSUPPORTED = object()  # cached marker for unsupported predicates
_SCAN_OPS = ("SeqScan", "IndexScan", "ColumnarScan")
_JOIN_OPS = ("HashJoin", "NestedLoopJoin", "MergeJoin")


def _default_store():
    """The env-configured artifact store, if any (lazy import: the bench
    package imports ``cardest`` transitively, so resolving it at call time
    avoids the cycle)."""
    from ..bench.store import store_from_env
    return store_from_env()


def spn_input_arrays(table):
    """The per-column float64 arrays SPN learning consumes for ``table``.

    Dictionary-encoded columns map negative codes (NULLs) to NaN.  The one
    canonical preparation — the estimator, the perf harness and the
    equivalence tests must all learn from identically prepared inputs.
    """
    arrays = {}
    for name, col in table.columns.items():
        values = col.values.astype(np.float64)
        if col.dictionary is not None:
            values = np.where(col.values < 0, np.nan, values)
        arrays[name] = values
    return arrays


class _PredicateCache:
    """Bounded FIFO cache keyed on ``(table, id(predicate))``.

    Entries pin the predicate object, so an ``id()`` can never be recycled
    while its entry lives (the same retention discipline as ``BatchCache``);
    the bound keeps that retention small.  Eviction is insertion-ordered
    (no per-hit reordering — this sits in the annotation hot loop, and one
    trace's working set fits the bound comfortably).
    """

    def __init__(self, max_entries=2048):
        self.max_entries = int(max_entries)
        self._entries = OrderedDict()

    def get(self, table, predicate):
        entry = self._entries.get((table, id(predicate)))
        if entry is None:
            return None
        return entry[1]

    def put(self, table, predicate, value):
        self._entries[(table, id(predicate))] = (predicate, value)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def clear(self):
        self._entries.clear()


class DataDrivenEstimator(CardinalityEstimator):
    """DeepDB-style estimator: SPNs + correlated join samples.

    **Persistence:** with ``REPRO_ARTIFACT_DIR`` set (or an explicit
    ``store=``), construction and :meth:`refresh` persist each table's SPN
    in the artifact store and hydrate instead of relearning when the
    table's content fingerprint matches — this costs one content-hash pass
    over each table at build time and writes under the store directory.
    Pass ``store=False`` to force purely in-memory learning regardless of
    the environment.
    """

    name = "deepdb"

    def __init__(self, db, sample_size=1024, seed=0, max_spn_rows=20_000,
                 fallback=None, store=None):
        self.db = db
        self.sample_size = int(sample_size)
        self._rng = np.random.default_rng(seed)
        self._fallback = fallback or TraditionalEstimator()
        # store=None: use the env-configured store; store=False: force none.
        if store is None:
            store = _default_store()
        self._store = store or None
        self._seed = seed
        self._max_spn_rows = max_spn_rows
        self._spns = {}
        self._fanout_indexes = {}
        self._constraints_cache = _PredicateCache()
        self._selectivity_cache = _PredicateCache()
        self._scan_cache = _PredicateCache()
        self._mask_cache = _PredicateCache(max_entries=512)
        self._table_sizes = {}
        self._build(max_spn_rows, seed)

    # ------------------------------------------------------------------
    # Training (data only, no queries)
    # ------------------------------------------------------------------
    def _build(self, max_spn_rows, seed):
        """Learn (or hydrate) the per-table SPNs and per-FK fanout indexes.

        With an artifact store attached (explicit ``store=`` or
        ``REPRO_ARTIFACT_DIR``), each table's SPN is persisted under the
        learning configuration's content key and validated against the
        table's *content fingerprint*, so a later session — or a refresh on
        unchanged data — hydrates from disk instead of relearning; any data
        change misses the fingerprint check and relearns.
        """
        store = self._store
        for table_name in self.db.schema.table_names:
            table = self.db.table(table_name)
            spn = store_key = fingerprint = None
            if store is not None:
                fingerprint = table.content_fingerprint()
                store_key = store.key("spn", self.db.name, table_name,
                                      seed, max_spn_rows)
                spn = store.load("spn", store_key, fingerprint=fingerprint)
            if spn is None:
                spn = learn_spn(spn_input_arrays(table), seed=seed,
                                max_rows=max_spn_rows)
                if store is not None:
                    store.save("spn", store_key, spn, fingerprint=fingerprint)
            self._spns[table_name] = spn
        for fk in self.db.schema.foreign_keys:
            key = (fk.child_table, fk.child_column)
            column = self.db.column(*key)
            self._fanout_indexes[key] = Index(*key, column.values)

    def refresh(self, seed=None):
        """Relearn from the current data (cheap; used after updates).

        Rebuilds under the constructor's learning configuration (same
        ``max_spn_rows``, and the same seed unless one is given), so on
        unchanged data a store-backed estimator hydrates the exact SPNs it
        saved instead of relearning under a different config.
        """
        self._spns.clear()
        self._fanout_indexes.clear()
        self.clear_caches()
        self._build(self._max_spn_rows,
                    self._seed if seed is None else seed)

    def clear_caches(self):
        """Drop memoized predicate evaluations (data changed, or timing)."""
        self._constraints_cache.clear()
        self._selectivity_cache.clear()
        self._scan_cache.clear()
        self._mask_cache.clear()
        self._table_sizes.clear()

    def _table_size(self, table):
        size = self._table_sizes.get(table)
        if size is None:
            size = len(self.db.table(table))
            self._table_sizes[table] = size
        return size

    # ------------------------------------------------------------------
    # Single-table estimates
    # ------------------------------------------------------------------
    def _literal_mapper(self, table):
        def mapper(node, literal):
            if isinstance(literal, (int, float)):
                return float(literal)
            column = self.db.column(table, node.column)
            if column.dictionary is None:
                return None
            code = column.dictionary_index.get(literal)
            return None if code is None else float(code)
        return mapper

    def _constraints(self, predicate):
        """Memoized ``predicate_to_constraints`` (unsupported cached too)."""
        cached = self._constraints_cache.get(None, predicate)
        if cached is None:
            try:
                cached = predicate_to_constraints(predicate)
            except UnsupportedPredicate:
                cached = _UNSUPPORTED
            self._constraints_cache.put(None, predicate, cached)
        return cached

    def table_selectivity(self, table, predicate):
        """SPN selectivity of a conjunctive predicate on one table (cached)."""
        if predicate is None:
            return 1.0
        cached = self._selectivity_cache.get(table, predicate)
        if cached is None:
            constraints = self._constraints(predicate)
            if constraints is _UNSUPPORTED:
                raise UnsupportedPredicate(
                    "predicate is not SPN-compatible (check supports())")
            cached = self._spns[table].selectivity(
                constraints, self._literal_mapper(table))
            self._selectivity_cache.put(table, predicate, cached)
        return cached

    def supports(self, predicate):
        if predicate is None:
            return True
        return self._constraints(predicate) is not _UNSUPPORTED

    def scan_rows(self, db, table, predicate):
        if not self.supports(predicate):
            return self._fallback.scan_rows(db, table, predicate)
        cacheable = db is self.db and predicate is not None
        if cacheable:
            cached = self._scan_cache.get(table, predicate)
            if cached is not None:
                return cached
        rows = db.table_stats(table).reltuples
        estimate = max(rows * self.table_selectivity(table, predicate), 0.5)
        if cacheable:
            self._scan_cache.put(table, predicate, estimate)
        return estimate

    # ------------------------------------------------------------------
    # Join estimates via correlated sampling
    # ------------------------------------------------------------------
    def _adjacency(self, tables, joins):
        adj = {t: [] for t in tables}
        for edge in joins:
            adj[edge.child_table].append(("to_parent", edge))
            adj[edge.parent_table].append(("to_child", edge))
        return adj

    def _filter_mask(self, table, predicate):
        """Cached row mask of ``predicate`` over the full table."""
        if predicate is None:
            return None
        cached = self._mask_cache.get(table, predicate)
        if cached is None:
            cached = evaluate_predicate(predicate, self.db.table(table))
            self._mask_cache.put(table, predicate, cached)
        return cached

    def _filter_masks(self, tables, filters):
        masks = {}
        for table in tables:
            predicate = filters.get(table)
            if predicate is None:
                masks[table] = None
            else:
                masks[table] = evaluate_predicate(predicate, self.db.table(table))
        return masks

    def prime_plan(self, db, plan):
        """Evaluate all of a plan's scan predicates in one batched pass.

        Every distinct ``(table, filter_predicate)`` pair below ``plan`` gets
        its SPN selectivity — and, when the plan joins, its full-table row
        mask — computed once (vectorized over the column arrays) and cached,
        so the per-node estimates during annotation become pure lookups
        instead of one recursive visit re-scanning rows per predicate.
        Consumes no RNG, hence does not perturb the sampling stream.
        """
        if db is not self.db:
            return
        filtered_scans = []
        has_join = False
        for node in plan.iter_nodes():
            op_name = node.op_name
            if op_name in _SCAN_OPS:
                if node.filter_predicate is not None:
                    filtered_scans.append(node)
            elif op_name in _JOIN_OPS:
                has_join = True
        for node in filtered_scans:
            if self.supports(node.filter_predicate):
                self.table_selectivity(node.table, node.filter_predicate)
                if has_join:
                    self._filter_mask(node.table, node.filter_predicate)

    def join_sample(self, tables, joins, seed=None):
        """Correlated sample of the join: (row_ids per table, weights, root).

        Weights are Horvitz-Thompson inverse-probability factors so that
        ``sum(weights) * |root| / sample_size`` estimates the unfiltered
        join cardinality.  The 1:N hop is vectorized (one batched index
        probe, one array draw) but consumes the RNG stream exactly as the
        loop in :meth:`join_sample_reference` would.
        """
        tables = list(tables)
        rng = (np.random.default_rng(seed) if seed is not None else self._rng)
        table_size = self._table_size
        root = max(tables, key=table_size)
        n_root = table_size(root)
        size = min(self.sample_size, n_root)
        sample = {root: rng.integers(0, n_root, size=size)}
        weights = np.ones(size, dtype=np.float64)

        adj = self._adjacency(tables, joins)
        visited = {root}
        frontier = [root]
        while frontier:
            table = frontier.pop()
            for direction, edge in adj[table]:
                other = (edge.parent_table if direction == "to_parent"
                         else edge.child_table)
                if other in visited:
                    continue
                if direction == "to_parent":
                    # N:1 hop: the parent row is determined by the FK value.
                    fk = self.db.column(edge.child_table, edge.child_column)
                    refs = fk.values[sample[table]]
                    alive = ~np.isnan(refs)
                    weights = weights * alive
                    sample[other] = np.where(alive, refs, 0).astype(np.int64)
                else:
                    # 1:N hop: sample one child per row, weight by fanout.
                    # All equality probes happen in one searchsorted batch;
                    # rows skipped by the reference loop (dead weight or no
                    # match) draw nothing, and the array draw visits the
                    # remaining rows in index order — the exact stream the
                    # per-row ``rng.integers`` calls would consume.
                    index = self._fanout_indexes[(edge.child_table,
                                                  edge.child_column)]
                    parent_keys = self.db.column(
                        edge.parent_table, edge.parent_column).values[sample[table]]
                    left, right, row_ids = index.eq_bounds_batch(parent_keys)
                    counts = right - left
                    alive = weights != 0.0
                    fanouts = np.where(alive, counts, 0).astype(np.float64)
                    picks = np.zeros(size, dtype=np.int64)
                    drawing = np.flatnonzero(alive & (counts > 0))
                    if drawing.size:
                        offsets = rng.integers(counts[drawing])
                        picks[drawing] = row_ids[left[drawing] + offsets]
                    weights = weights * fanouts
                    sample[other] = picks
                visited.add(other)
                frontier.append(other)
        return sample, weights, root, size

    def join_rows(self, db, tables, joins, filters):
        tables = list(tables)
        if any(not self.supports(filters.get(t)) for t in tables):
            return self._fallback.join_rows(db, tables, joins, filters)
        if len(tables) == 1:
            return self.scan_rows(db, tables[0], filters.get(tables[0]))

        sample, weights, root, size = self.join_sample(tables, joins)
        n_root = self._table_size(root)
        match = weights.copy()
        for table in tables:
            mask = self._filter_mask(table, filters.get(table))
            if mask is not None:
                match = match * mask[sample[table]]

        estimate = match.sum() * n_root / size
        if (match > 0).sum() >= 8:
            return max(float(estimate), 0.5)

        # Too few sample matches: combine the unfiltered join estimate with
        # SPN per-table selectivities (independence across tables).
        join_size = weights.sum() * n_root / size
        sel = 1.0
        for table in tables:
            sel *= self.table_selectivity(table, filters.get(table))
        return max(float(join_size * sel), 0.5)

    # ------------------------------------------------------------------
    # Reference (loop) implementations — executable spec for tests
    # ------------------------------------------------------------------
    def table_selectivity_reference(self, table, predicate):
        """Uncached original: parse constraints and query the SPN."""
        if predicate is None:
            return 1.0
        constraints = predicate_to_constraints(predicate)
        return self._spns[table].selectivity(
            constraints, self._literal_mapper(table))

    def supports_reference(self, predicate):
        if predicate is None:
            return True
        try:
            predicate_to_constraints(predicate)
            return True
        except UnsupportedPredicate:
            return False

    def scan_rows_reference(self, db, table, predicate):
        if not self.supports_reference(predicate):
            return self._fallback.scan_rows(db, table, predicate)
        rows = db.table_stats(table).reltuples
        return max(rows * self.table_selectivity_reference(table, predicate),
                   0.5)

    def join_sample_reference(self, tables, joins, seed=None):
        """Original per-row sampling loop (one ``lookup_eq`` per sample row)."""
        tables = list(tables)
        rng = (np.random.default_rng(seed) if seed is not None else self._rng)
        root = max(tables, key=lambda t: len(self.db.table(t)))
        n_root = len(self.db.table(root))
        size = min(self.sample_size, n_root)
        sample = {root: rng.integers(0, n_root, size=size)}
        weights = np.ones(size, dtype=np.float64)

        adj = self._adjacency(tables, joins)
        visited = {root}
        frontier = [root]
        while frontier:
            table = frontier.pop()
            for direction, edge in adj[table]:
                other = (edge.parent_table if direction == "to_parent"
                         else edge.child_table)
                if other in visited:
                    continue
                if direction == "to_parent":
                    fk = self.db.column(edge.child_table, edge.child_column)
                    refs = fk.values[sample[table]]
                    alive = ~np.isnan(refs)
                    weights = weights * alive
                    sample[other] = np.where(alive, refs, 0).astype(np.int64)
                else:
                    index = self._fanout_indexes[(edge.child_table,
                                                  edge.child_column)]
                    parent_keys = self.db.column(
                        edge.parent_table, edge.parent_column).values[sample[table]]
                    picks = np.zeros(size, dtype=np.int64)
                    fanouts = np.zeros(size, dtype=np.float64)
                    for i, key in enumerate(parent_keys):
                        if weights[i] == 0.0:
                            continue
                        matches = index.lookup_eq(key)
                        fanouts[i] = len(matches)
                        if len(matches):
                            picks[i] = matches[rng.integers(len(matches))]
                    weights = weights * fanouts
                    sample[other] = picks
                visited.add(other)
                frontier.append(other)
        return sample, weights, root, size

    def join_rows_reference(self, db, tables, joins, filters):
        """Original uncached join estimate (per-predicate full-table scans)."""
        tables = list(tables)
        if any(not self.supports_reference(filters.get(t)) for t in tables):
            return self._fallback.join_rows(db, tables, joins, filters)
        if len(tables) == 1:
            return self.scan_rows_reference(db, tables[0],
                                            filters.get(tables[0]))

        sample, weights, root, size = self.join_sample_reference(tables, joins)
        n_root = len(self.db.table(root))
        masks = self._filter_masks(tables, filters)
        match = weights.copy()
        for table in tables:
            mask = masks[table]
            if mask is not None:
                match = match * mask[sample[table]]

        estimate = match.sum() * n_root / size
        if (match > 0).sum() >= 8:
            return max(float(estimate), 0.5)

        join_size = weights.sum() * n_root / size
        sel = 1.0
        for table in tables:
            sel *= self.table_selectivity_reference(table, filters.get(table))
        return max(float(join_size * sel), 0.5)
