"""Data-driven cardinality estimation (the DeepDB stand-in).

Learned from the data only — no query executions — as required for zero-shot
compatibility (Table 2 of the paper).  Two cooperating components:

* per-table **SPNs** (:mod:`repro.cardest.spn`) for single-table conjunctive
  selectivities,
* per-FK-edge **fanout indexes** enabling correlated *join sampling*: a
  Horvitz-Thompson estimator walks the query's join tree, expanding child
  edges by sampling one child per match and weighting by the true fanout.
  Per-table predicates are then evaluated exactly on the sampled rows.

Like DeepDB, the estimator does not support disjunctions or string patterns;
those fall back to the traditional optimizer estimator (the fallback the
paper recommends in Section 3.4).  Training takes seconds — "usually in the
order of minutes" at paper scale — and can be refreshed cheaply after
updates (Fig. 8).
"""

from __future__ import annotations

import numpy as np

from ..sql import evaluate_predicate
from ..storage import Index
from .base import CardinalityEstimator
from .spn import UnsupportedPredicate, learn_spn, predicate_to_constraints
from .traditional import TraditionalEstimator

__all__ = ["DataDrivenEstimator"]


class DataDrivenEstimator(CardinalityEstimator):
    """DeepDB-style estimator: SPNs + correlated join samples."""

    name = "deepdb"

    def __init__(self, db, sample_size=1024, seed=0, max_spn_rows=20_000,
                 fallback=None):
        self.db = db
        self.sample_size = int(sample_size)
        self._rng = np.random.default_rng(seed)
        self._fallback = fallback or TraditionalEstimator()
        self._spns = {}
        self._fanout_indexes = {}
        self._build(max_spn_rows, seed)

    # ------------------------------------------------------------------
    # Training (data only, no queries)
    # ------------------------------------------------------------------
    def _build(self, max_spn_rows, seed):
        for table_name in self.db.schema.table_names:
            table = self.db.table(table_name)
            arrays = {}
            for name, col in table.columns.items():
                values = col.values.astype(np.float64)
                if col.dictionary is not None:
                    values = np.where(col.values < 0, np.nan, values)
                arrays[name] = values
            self._spns[table_name] = learn_spn(arrays, seed=seed,
                                               max_rows=max_spn_rows)
        for fk in self.db.schema.foreign_keys:
            key = (fk.child_table, fk.child_column)
            column = self.db.column(*key)
            self._fanout_indexes[key] = Index(*key, column.values)

    def refresh(self, seed=0):
        """Relearn from the current data (cheap; used after updates)."""
        self._spns.clear()
        self._fanout_indexes.clear()
        self._build(20_000, seed)

    # ------------------------------------------------------------------
    # Single-table estimates
    # ------------------------------------------------------------------
    def _literal_mapper(self, table):
        def mapper(node, literal):
            if isinstance(literal, (int, float)):
                return float(literal)
            column = self.db.column(table, node.column)
            if column.dictionary is None:
                return None
            try:
                return float(column.dictionary.index(literal))
            except ValueError:
                return None
        return mapper

    def table_selectivity(self, table, predicate):
        """SPN selectivity of a conjunctive predicate on one table."""
        if predicate is None:
            return 1.0
        constraints = predicate_to_constraints(predicate)
        return self._spns[table].selectivity(
            constraints, self._literal_mapper(table))

    def supports(self, predicate):
        if predicate is None:
            return True
        try:
            predicate_to_constraints(predicate)
            return True
        except UnsupportedPredicate:
            return False

    def scan_rows(self, db, table, predicate):
        if not self.supports(predicate):
            return self._fallback.scan_rows(db, table, predicate)
        rows = db.table_stats(table).reltuples
        return max(rows * self.table_selectivity(table, predicate), 0.5)

    # ------------------------------------------------------------------
    # Join estimates via correlated sampling
    # ------------------------------------------------------------------
    def _adjacency(self, tables, joins):
        adj = {t: [] for t in tables}
        for edge in joins:
            adj[edge.child_table].append(("to_parent", edge))
            adj[edge.parent_table].append(("to_child", edge))
        return adj

    def _filter_masks(self, tables, filters):
        masks = {}
        for table in tables:
            predicate = filters.get(table)
            if predicate is None:
                masks[table] = None
            else:
                masks[table] = evaluate_predicate(predicate, self.db.table(table))
        return masks

    def join_sample(self, tables, joins, seed=None):
        """Correlated sample of the join: (row_ids per table, weights, root).

        Weights are Horvitz-Thompson inverse-probability factors so that
        ``sum(weights) * |root| / sample_size`` estimates the unfiltered
        join cardinality.
        """
        tables = list(tables)
        rng = (np.random.default_rng(seed) if seed is not None else self._rng)
        root = max(tables, key=lambda t: len(self.db.table(t)))
        n_root = len(self.db.table(root))
        size = min(self.sample_size, n_root)
        sample = {root: rng.integers(0, n_root, size=size)}
        weights = np.ones(size, dtype=np.float64)

        adj = self._adjacency(tables, joins)
        visited = {root}
        frontier = [root]
        while frontier:
            table = frontier.pop()
            for direction, edge in adj[table]:
                other = (edge.parent_table if direction == "to_parent"
                         else edge.child_table)
                if other in visited:
                    continue
                if direction == "to_parent":
                    # N:1 hop: the parent row is determined by the FK value.
                    fk = self.db.column(edge.child_table, edge.child_column)
                    refs = fk.values[sample[table]]
                    alive = ~np.isnan(refs)
                    weights = weights * alive
                    sample[other] = np.where(alive, refs, 0).astype(np.int64)
                else:
                    # 1:N hop: sample one child per row, weight by fanout.
                    index = self._fanout_indexes[(edge.child_table,
                                                  edge.child_column)]
                    parent_keys = self.db.column(
                        edge.parent_table, edge.parent_column).values[sample[table]]
                    picks = np.zeros(size, dtype=np.int64)
                    fanouts = np.zeros(size, dtype=np.float64)
                    for i, key in enumerate(parent_keys):
                        if weights[i] == 0.0:
                            continue
                        matches = index.lookup_eq(key)
                        fanouts[i] = len(matches)
                        if len(matches):
                            picks[i] = matches[rng.integers(len(matches))]
                    weights = weights * fanouts
                    sample[other] = picks
                visited.add(other)
                frontier.append(other)
        return sample, weights, root, size

    def join_rows(self, db, tables, joins, filters):
        tables = list(tables)
        if any(not self.supports(filters.get(t)) for t in tables):
            return self._fallback.join_rows(db, tables, joins, filters)
        if len(tables) == 1:
            return self.scan_rows(db, tables[0], filters.get(tables[0]))

        sample, weights, root, size = self.join_sample(tables, joins)
        n_root = len(self.db.table(root))
        masks = self._filter_masks(tables, filters)
        match = weights.copy()
        for table in tables:
            mask = masks[table]
            if mask is not None:
                match = match * mask[sample[table]]

        estimate = match.sum() * n_root / size
        if (match > 0).sum() >= 8:
            return max(float(estimate), 0.5)

        # Too few sample matches: combine the unfiltered join estimate with
        # SPN per-table selectivities (independence across tables).
        join_size = weights.sum() * n_root / size
        sel = 1.0
        for table in tables:
            sel *= self.table_selectivity(table, filters.get(table))
        return max(float(join_size * sel), 0.5)
