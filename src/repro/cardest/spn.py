"""Mini Sum-Product Networks for single-table selectivity estimation.

A compact reimplementation of the structure DeepDB [Hilprecht et al. 2020]
uses: learned from the *data only* (no queries),

* **sum nodes** partition rows (2-means clustering),
* **product nodes** partition columns into (approximately) independent
  groups, detected via pairwise rank correlation,
* **leaves** hold per-column distributions: exact value masses for
  low-cardinality columns, equi-depth histograms otherwise, plus NULL mass.

Probabilities of conjunctive per-column constraints are evaluated
recursively.  The model is intentionally approximate: that is the quality
regime the paper's "DeepDB Est. Cardinalities" curves occupy (better than
the optimizer's independence arithmetic, worse than exact counts).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import perfstats
from ..sql import BooleanPredicate, Comparison, PredOp

__all__ = ["SPN", "learn_spn", "learn_spn_reference",
           "predicate_to_constraints", "UnsupportedPredicate"]

_MIN_INSTANCES = 64
_MAX_DEPTH = 6
_CORR_THRESHOLD = 0.3
_DISCRETE_LIMIT = 64
_HISTOGRAM_BINS = 24


class UnsupportedPredicate(Exception):
    """Raised when a predicate cannot be mapped to SPN constraints."""


def predicate_to_constraints(predicate):
    """Map a conjunctive predicate tree to ``{column: [Comparison, ...]}``.

    Raises :class:`UnsupportedPredicate` for disjunctions and string-pattern
    operators, mirroring the limits of data-driven estimators discussed in
    Section 3.4 of the paper.
    """
    constraints = {}

    def visit(node):
        if node is None:
            return
        if isinstance(node, BooleanPredicate):
            if node.op != PredOp.AND:
                raise UnsupportedPredicate("disjunctions are not supported")
            for child in node.children:
                visit(child)
            return
        if node.op in (PredOp.LIKE, PredOp.NOT_LIKE):
            raise UnsupportedPredicate("string patterns are not supported")
        constraints.setdefault(node.column, []).append(node)

    visit(predicate)
    return constraints


# ----------------------------------------------------------------------
# Leaves
# ----------------------------------------------------------------------
@dataclass
class _Leaf:
    """Distribution of one column: discrete masses or histogram + NULL mass."""

    column: str
    null_mass: float
    discrete_values: np.ndarray = None     # sorted values
    discrete_masses: np.ndarray = None
    bin_edges: np.ndarray = None            # histogram mode
    bin_masses: np.ndarray = None

    @classmethod
    def fit(cls, column, values):
        n = len(values)
        if n == 0:
            return cls(column, 0.0, np.array([]), np.array([]))
        null_mask = np.isnan(values)
        null_mass = float(null_mask.mean())
        valid = values[~null_mask]
        if valid.size == 0:
            return cls(column, null_mass, np.array([]), np.array([]))
        uniques, counts = np.unique(valid, return_counts=True)
        if uniques.size <= _DISCRETE_LIMIT:
            return cls(column, null_mass, uniques, counts / n)
        edges = np.quantile(valid, np.linspace(0, 1, _HISTOGRAM_BINS + 1))
        edges = np.unique(edges)
        hist, _ = np.histogram(valid, bins=edges)
        return cls(column, null_mass, bin_edges=edges,
                   bin_masses=hist / n)

    # -- probability of one comparison ---------------------------------
    def _prob_discrete(self, node: Comparison, literal):
        """``discrete_values`` is sorted, so every mass subset is a prefix,
        suffix or single element — resolved with ``searchsorted`` instead of
        boolean-mask scans (bit-identical: the same masses are summed in the
        same order)."""
        values, masses = self.discrete_values, self.discrete_masses
        if values.size == 0:
            return 0.0
        op = node.op
        if op == PredOp.EQ:
            i = values.searchsorted(literal, side="left")
            if i < values.size and values[i] == literal:
                return float(masses[i])
            return 0.0
        if op == PredOp.NEQ:
            return float(masses[values != literal].sum())
        if op == PredOp.LT:
            return float(masses[:values.searchsorted(literal, side="left")].sum())
        if op == PredOp.LEQ:
            return float(masses[:values.searchsorted(literal, side="right")].sum())
        if op == PredOp.GT:
            return float(masses[values.searchsorted(literal, side="right"):].sum())
        if op == PredOp.GEQ:
            return float(masses[values.searchsorted(literal, side="left"):].sum())
        raise UnsupportedPredicate(str(op))

    def _prob_histogram(self, node: Comparison, literal):
        edges, masses = self.bin_edges, self.bin_masses
        if edges is None or len(edges) < 2:
            return 0.0

        def cdf(x):
            """Mass below x (linear interpolation inside bins)."""
            if x <= edges[0]:
                return 0.0
            if x >= edges[-1]:
                return float(masses.sum())
            i = int(edges.searchsorted(x, side="right")) - 1
            i = min(i, len(masses) - 1)
            lo, hi = float(edges[i]), float(edges[i + 1])
            frac = (x - lo) / (hi - lo) if hi > lo else 1.0
            return float(masses[:i].sum() + masses[i] * frac)

        total = float(masses.sum())
        if node.op == PredOp.EQ:
            # Point mass approximation: mass of the bin / bin density.
            i = min(max(int(edges.searchsorted(literal, side="right")) - 1, 0),
                    len(masses) - 1)
            span = max(edges[i + 1] - edges[i], 1e-12)
            return float(masses[i] / max(span, 1.0))
        if node.op == PredOp.NEQ:
            return total - self._prob_histogram(
                Comparison(node.table, node.column, PredOp.EQ, literal), literal)
        if node.op == PredOp.LT:
            return cdf(literal)
        if node.op == PredOp.LEQ:
            return cdf(np.nextafter(literal, np.inf))
        if node.op == PredOp.GT:
            return total - cdf(np.nextafter(literal, np.inf))
        if node.op == PredOp.GEQ:
            return total - cdf(literal)
        raise UnsupportedPredicate(str(node.op))

    def probability(self, nodes, literal_mapper):
        """P(all comparisons hold) for this column (intersection approx)."""
        for node in nodes:
            if node.op != PredOp.IS_NULL:
                prob = 1.0 - self.null_mass
                break
        else:
            prob = 1.0
        for node in nodes:
            if node.op == PredOp.IS_NULL:
                prob = min(prob, self.null_mass)
                continue
            if node.op == PredOp.IS_NOT_NULL:
                prob = min(prob, 1.0 - self.null_mass)
                continue
            if node.op == PredOp.IN:
                eq = Comparison(node.table, node.column, PredOp.EQ, 0)
                literals = [literal_mapper(node, v) for v in node.literal]
                p = sum(self._prob_one(eq, lit) for lit in literals
                        if lit is not None)
            else:
                literal = literal_mapper(node, node.literal)
                p = self._prob_one(node, literal) if literal is not None else 0.0
            prob = min(prob, p)
        # Scalar clamp (bit-identical to np.clip on floats, without the
        # per-call ufunc dispatch overhead).
        return min(max(float(prob), 0.0), 1.0)

    def _prob_one(self, node, literal):
        if self.discrete_values is not None and self.discrete_values.size:
            return self._prob_discrete(node, literal)
        return self._prob_histogram(node, literal)


# ----------------------------------------------------------------------
# Internal nodes
# ----------------------------------------------------------------------
@dataclass
class _Product:
    children: list  # sub-SPNs over disjoint column sets

    def probability(self, constraints, literal_mapper):
        if self._columns.isdisjoint(constraints):
            return self._neutral_mass
        prob = 1.0
        for child in self.children:
            prob *= child.probability(constraints, literal_mapper)
        return prob


@dataclass
class _Sum:
    weights: np.ndarray
    children: list

    def probability(self, constraints, literal_mapper):
        if self._columns.isdisjoint(constraints):
            return self._neutral_mass
        total = 0.0
        for w, child in zip(self.weights, self.children):
            total += w * child.probability(constraints, literal_mapper)
        return float(total)


@dataclass
class _LeafSet:
    """Product of independent leaves (base case over remaining columns)."""

    leaves: dict  # column -> _Leaf

    def probability(self, constraints, literal_mapper):
        if self._columns.isdisjoint(constraints):
            return 1.0
        prob = 1.0
        for column, nodes in constraints.items():
            leaf = self.leaves.get(column)
            if leaf is None:
                continue
            prob *= leaf.probability(nodes, literal_mapper)
        return prob


def _annotate_structure(node):
    """Attach per-node column sets and *neutral masses* for pruned traversal.

    A subtree touching none of the constrained columns evaluates — through
    the full recursion — to a constraint-independent constant: 1.0 for leaf
    sets, and the correspondingly weighted sums/products above them.  That
    constant is precomputed here *with the same arithmetic and operand order
    the recursion uses*, so short-circuiting a disjoint subtree returns the
    bit-identical value the full traversal would have produced, skipping the
    walk.  This is what makes repeated selectivity queries on wide tables
    cheap: only the branches owning the constrained columns are visited.
    """
    if isinstance(node, _LeafSet):
        node._columns = frozenset(node.leaves)
        node._neutral_mass = 1.0
        return node._columns, 1.0
    if isinstance(node, _Product):
        columns = set()
        prob = 1.0
        for child in node.children:
            child_columns, mass = _annotate_structure(child)
            columns |= child_columns
            prob *= mass
        node._columns = frozenset(columns)
        node._neutral_mass = prob
        return node._columns, prob
    columns = set()
    total = 0.0
    for w, child in zip(node.weights, node.children):
        child_columns, mass = _annotate_structure(child)
        columns |= child_columns
        total += w * mass
    total = float(total)
    node._columns = frozenset(columns)
    node._neutral_mass = total
    return node._columns, total


class SPN:
    """Learned single-table distribution supporting conjunctive queries."""

    def __init__(self, root, columns, n_rows):
        self._root = root
        self.columns = list(columns)
        self.n_rows = n_rows
        _annotate_structure(root)

    def selectivity(self, constraints, literal_mapper):
        """P(row satisfies all constraints); constraints col -> [Comparison]."""
        unknown = set(constraints) - set(self.columns)
        if unknown:
            raise KeyError(f"SPN has no columns {sorted(unknown)}")
        if not constraints:
            return 1.0
        prob = self._root.probability(constraints, literal_mapper)
        return min(max(float(prob), 0.0), 1.0)


# ----------------------------------------------------------------------
# Structure learning
# ----------------------------------------------------------------------
# Every learning primitive exists twice: the vectorized fast path the
# engine dispatches to, and a ``*_reference`` per-column/per-pair loop — the
# executable spec the fast path must match bit-for-bit (the tier-1 suite
# asserts identical tree structure, weights, leaf distributions and
# selectivities).  Rank transforms run whole-matrix (one stable double
# ``argsort`` over axis 0 + one ``corrcoef``), the correlation-graph
# components resolve by min-label propagation on the boolean adjacency
# matrix, and 2-means evaluates both center distances in one broadcast.
#
# Because the two implementations of each primitive are bit-identical,
# *dispatching between them is free*: ``learn_spn`` picks per call site by
# matrix size.  The vectorized forms win when the arrays are big enough to
# amortize their extra temporaries (masks, transposes, broadcast cubes);
# below the measured crossovers the plain loops are faster — the recursion
# spends most of its calls on small post-split submatrices, which is what
# made the all-vectorized path *slower* than the loop reference on narrow
# benchmark tables.  Thresholds are conservative crossovers measured on the
# perf corpus (see ``benchmarks/perf``):
_RANK_VECTOR_MAX_ROWS = 2048     # whole-matrix ranking wins below this
_COMPONENTS_VECTOR_MIN_COLS = 48  # label propagation needs wide matrices
_TWO_MEANS_VECTOR_MIN_CELLS = 256  # broadcast needs n*k to amortize

def _rank_correlation_reference(matrix):
    """Per-column rank loop (executable spec for :func:`_rank_correlation`)."""
    n, k = matrix.shape
    ranks = np.empty_like(matrix)
    for j in range(k):
        col = matrix[:, j]
        filled = np.where(np.isnan(col), np.nanmean(col) if not np.all(np.isnan(col)) else 0.0, col)
        ranks[:, j] = np.argsort(np.argsort(filled, kind="stable"))
    with np.errstate(invalid="ignore"):
        corr = np.corrcoef(ranks, rowvar=False)
    corr = np.nan_to_num(corr, nan=0.0)
    return np.abs(corr)


def _rank_correlation_vectorized(matrix):
    """Pairwise |Spearman| correlation of the columns of ``matrix``.

    Whole-matrix: NaNs are filled with per-column means computed on the
    contiguous transpose (the same pairwise-summation order ``np.nanmean``
    uses per column), both rank transforms run as axis-0 ``argsort`` calls
    over the full matrix, and one ``corrcoef`` finishes the job.
    """
    nan_mask = np.isnan(matrix)
    cols = np.ascontiguousarray(matrix.T)
    means = np.zeros(matrix.shape[1])
    not_all_nan = ~np.all(nan_mask, axis=0)
    if not_all_nan.any():
        means[not_all_nan] = np.nanmean(cols[not_all_nan], axis=1)
    filled = np.where(nan_mask, means[None, :], matrix)
    order = np.argsort(filled, axis=0, kind="stable")
    ranks = np.empty_like(matrix)
    ranks[...] = np.argsort(order, axis=0)
    with np.errstate(invalid="ignore"):
        corr = np.corrcoef(ranks, rowvar=False)
    corr = np.nan_to_num(corr, nan=0.0)
    return np.abs(corr)


def _rank_correlation(matrix):
    """Adaptive: whole-matrix ranking amortizes its mask/transpose
    temporaries up to a few thousand rows; past that the argsorts dominate
    both paths and the per-column loop's smaller footprint wins."""
    if matrix.shape[0] <= _RANK_VECTOR_MAX_ROWS:
        return _rank_correlation_vectorized(matrix)
    return _rank_correlation_reference(matrix)


def _components_reference(corr, k):
    """Union-find over the O(k²) pair loop (spec for :func:`_components`)."""
    parent = list(range(k))

    def find(x):
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for i in range(k):
        for j in range(i + 1, k):
            if corr[i, j] > _CORR_THRESHOLD:
                parent[find(i)] = find(j)
    groups = {}
    for i in range(k):
        groups.setdefault(find(i), []).append(i)
    return list(groups.values())


def _components_vectorized(corr, k):
    """Connected components above the threshold, by min-label propagation.

    Produces the exact grouping of the union-find reference: components
    ordered by their smallest member, members ascending.
    """
    adjacency = corr > _CORR_THRESHOLD
    np.fill_diagonal(adjacency, True)
    labels = np.arange(k)
    while True:
        neighbor_min = np.where(adjacency, labels[None, :], k).min(axis=1)
        new_labels = np.minimum(labels, neighbor_min)
        if np.array_equal(new_labels, labels):
            break
        labels = new_labels
    return [list(np.flatnonzero(labels == label))
            for label in np.unique(labels)]


def _components(corr, k):
    """Adaptive: min-label propagation iterates O(k²) matrices per round,
    which only beats the O(k²) union-find pair loop on wide tables."""
    if k >= _COMPONENTS_VECTOR_MIN_COLS:
        return _components_vectorized(corr, k)
    return _components_reference(corr, k)


def _independent_groups_reference(matrix, columns):
    return _components_reference(_rank_correlation_reference(matrix),
                                 len(columns))


def _independent_groups(matrix, columns):
    """Connected components of the correlation graph above the threshold."""
    return _components(_rank_correlation(matrix), len(columns))


def _two_means_core(matrix, rng, pairwise_dists):
    filled = np.where(np.isnan(matrix), 0.0, matrix)
    std = filled.std(axis=0)
    std[std == 0] = 1.0
    normed = (filled - filled.mean(axis=0)) / std
    n = len(normed)
    projection = normed.sum(axis=1)
    centers = np.stack([normed[projection.argmin()], normed[projection.argmax()]])
    if np.allclose(centers[0], centers[1]):
        return np.zeros(n, dtype=np.int64)
    assign = np.zeros(n, dtype=np.int64)
    for _ in range(8):
        dists = pairwise_dists(normed, centers)
        new_assign = dists.argmin(axis=0)
        if (new_assign == assign).all():
            break
        assign = new_assign
        for c in range(2):
            members = normed[assign == c]
            if len(members):
                centers[c] = members.mean(axis=0)
    return assign


def _two_means_reference(matrix, rng):
    """Per-center distance loop (executable spec for :func:`_two_means`)."""
    return _two_means_core(
        matrix, rng,
        lambda normed, centers: np.stack(
            [((normed - c) ** 2).sum(axis=1) for c in centers]))


def _two_means_vectorized(matrix, rng):
    """Cheap 2-means row clustering on standardized data.

    Centers are initialized at the extremes of the summed-coordinate
    projection: deterministic and well-separated even for discrete data
    (random initialization frequently collapses to one cluster there).
    Both center distances evaluate in one broadcast over the precomputed
    standardized matrix (reductions stay along the contiguous axis, so the
    assignments match the per-center loop bit-for-bit).
    """
    return _two_means_core(
        matrix, rng,
        lambda normed, centers: (
            (normed[None, :, :] - centers[:, None, :]) ** 2).sum(axis=2))


def _two_means(matrix, rng):
    """Adaptive: the (2, n, k) broadcast cube needs enough cells to beat
    the two-iteration per-center loop's smaller temporaries."""
    if matrix.size >= _TWO_MEANS_VECTOR_MIN_CELLS:
        return _two_means_vectorized(matrix, rng)
    return _two_means_reference(matrix, rng)


def _learn(matrix, columns, rng, depth, groups_fn=_independent_groups,
           cluster_fn=_two_means):
    n, k = matrix.shape
    if k == 1 or n < _MIN_INSTANCES or depth >= _MAX_DEPTH:
        return _LeafSet({col: _Leaf.fit(col, matrix[:, j])
                         for j, col in enumerate(columns)})

    groups = groups_fn(matrix, columns)
    if len(groups) > 1:
        children = [_learn(matrix[:, idx], [columns[i] for i in idx], rng,
                           depth + 1, groups_fn, cluster_fn)
                    for idx in groups]
        return _Product(children)

    assign = cluster_fn(matrix, rng)
    sizes = np.bincount(assign, minlength=2)
    if sizes.min() < max(_MIN_INSTANCES // 4, 8):
        return _LeafSet({col: _Leaf.fit(col, matrix[:, j])
                         for j, col in enumerate(columns)})
    children = []
    weights = []
    for c in range(2):
        members = matrix[assign == c]
        children.append(_learn(members, columns, rng, depth + 1,
                               groups_fn, cluster_fn))
        weights.append(len(members) / n)
    return _Sum(np.array(weights), children)


def _sample_matrix(column_arrays, seed, max_rows):
    columns = list(column_arrays)
    if not columns:
        raise ValueError("learn_spn needs at least one column")
    n = len(next(iter(column_arrays.values())))
    rng = np.random.default_rng(seed)
    rows = np.arange(n)
    if n > max_rows:
        rows = rng.choice(n, size=max_rows, replace=False)
    matrix = np.stack([np.asarray(column_arrays[c], dtype=np.float64)[rows]
                       for c in columns], axis=1)
    return matrix, columns, n, rng


def learn_spn(column_arrays, seed=0, max_rows=20_000):
    """Learn an SPN from ``{column: values}`` (floats, NaN as NULL).

    Uses the adaptive primitives: each ranking/component/clustering call
    picks the vectorized or loop implementation by matrix size (they are
    bit-identical, so the dispatch never changes the learned tree).
    """
    perfstats.increment("spn.learn.vectorized")
    matrix, columns, n, rng = _sample_matrix(column_arrays, seed, max_rows)
    root = _learn(matrix, columns, rng, depth=0)
    return SPN(root, columns, n)


def learn_spn_reference(column_arrays, seed=0, max_rows=20_000):
    """Structure learning through the per-column/per-pair loop primitives.

    The executable spec :func:`learn_spn` must reproduce bit-identically:
    same tree shape, same sum weights, same leaf distributions, hence the
    same selectivity for every constraint set.
    """
    perfstats.increment("spn.learn.reference")
    matrix, columns, n, rng = _sample_matrix(column_arrays, seed, max_rows)
    root = _learn(matrix, columns, rng, depth=0,
                  groups_fn=_independent_groups_reference,
                  cluster_fn=_two_means_reference)
    return SPN(root, columns, n)
