"""Plan cardinality annotation: fill the ``cardout`` feature per plan node.

The zero-shot model takes intermediate cardinalities as *inputs* (separation
of concerns).  This module computes, for every node of a physical plan, the
cardinality according to a chosen source:

* ``"optimizer"`` — the traditional estimates already on the plan,
* ``"exact"`` — the true cardinalities recorded by the executor,
* ``"deepdb"`` — predictions of a :class:`DataDrivenEstimator`.
"""

from __future__ import annotations

__all__ = ["annotate_cardinalities", "CARD_SOURCES"]

CARD_SOURCES = ("optimizer", "exact", "deepdb")


def _subtree_query_parts(node):
    """Base tables, join edges and filters below (and including) ``node``."""
    tables = []
    joins = []
    filters = {}
    for sub in node.iter_nodes():
        if sub.is_scan:
            tables.append(sub.table)
            if sub.filter_predicate is not None:
                filters[sub.table] = sub.filter_predicate
        if sub.is_join and sub.join is not None:
            joins.append(sub.join)
    return tables, joins, filters


def annotate_cardinalities(db, plan, source, estimator=None):
    """Return ``{id(node): cardinality}`` for every node of ``plan``.

    For ``"deepdb"`` an existing :class:`DataDrivenEstimator` for ``db``
    should be passed to avoid rebuilding models per plan.
    """
    if source not in CARD_SOURCES:
        raise ValueError(f"unknown cardinality source {source!r}")

    cards = {}
    if source == "optimizer":
        for node in plan.iter_nodes():
            cards[id(node)] = float(node.est_rows)
        return cards
    if source == "exact":
        for node in plan.iter_nodes():
            rows = node.true_rows if node.true_rows is not None else node.est_rows
            cards[id(node)] = float(rows)
        return cards

    if estimator is None:
        from .datadriven import DataDrivenEstimator
        estimator = DataDrivenEstimator(db)

    def visit(node):
        for child in node.children:
            visit(child)
        if node.is_scan:
            value = estimator.scan_rows(db, node.table, node.filter_predicate)
        elif node.is_join:
            tables, joins, filters = _subtree_query_parts(node)
            value = estimator.join_rows(db, set(tables), joins, filters)
        elif node.op_name in ("Gather", "Broadcast", "Repartition", "Sort"):
            value = cards[id(node.children[0])]
        elif node.op_name == "Aggregate":
            value = 1.0
        elif node.op_name == "HashAggregate":
            input_rows = cards[id(node.children[0])]
            groups = 1.0
            for table, column in node.group_by:
                groups *= max(db.column_stats(table, column).ndistinct, 1)
            value = max(1.0, min(groups, input_rows))
        else:
            value = float(node.est_rows)
        cards[id(node)] = float(value)

    visit(plan)

    # Nested-loop inner index scans report per-loop rows (as in EXPLAIN);
    # rescale the subquery estimate accordingly.
    for node in plan.iter_nodes():
        if node.op_name == "NestedLoopJoin" and node.children[1].is_scan:
            outer, inner = node.children
            loops = max(cards[id(outer)], 1.0)
            cards[id(inner)] = max(cards[id(node)] / loops, 0.0)
    return cards
