"""Plan cardinality annotation: fill the ``cardout`` feature per plan node.

The zero-shot model takes intermediate cardinalities as *inputs* (separation
of concerns).  This module computes, for every node of a physical plan, the
cardinality according to a chosen source:

* ``"optimizer"`` — the traditional estimates already on the plan,
* ``"exact"`` — the true cardinalities recorded by the executor,
* ``"deepdb"`` — predictions of a :class:`DataDrivenEstimator`.

:func:`annotate_cardinalities` is the engine's batched fast path: for the
DeepDB source it first primes the estimator with *all* of the plan's scan
predicates in one vectorized pass (masks + SPN selectivities, each evaluated
exactly once and cached), then walks the plan consuming cached lookups and
the vectorized join sampler.  :func:`annotate_cardinalities_reference` keeps
the original recursive visit — per-predicate full-table scans and the
per-row sampling loop — as the executable spec; both produce bit-identical
cardinalities (the batched sampler consumes the same RNG stream), which the
test suite asserts.
"""

from __future__ import annotations

from .. import perfstats

__all__ = ["annotate_cardinalities", "annotate_cardinalities_reference",
           "CARD_SOURCES"]

CARD_SOURCES = ("optimizer", "exact", "deepdb")

_PASSTHROUGH_OPS = ("Gather", "Broadcast", "Repartition", "Sort")
_SCAN_OPS = ("SeqScan", "IndexScan", "ColumnarScan")
_JOIN_OPS = ("HashJoin", "NestedLoopJoin", "MergeJoin")


def _subtree_query_parts(node):
    """Base tables, join edges and filters below (and including) ``node``."""
    tables = []
    joins = []
    filters = {}
    for sub in node.iter_nodes():
        if sub.is_scan:
            tables.append(sub.table)
            if sub.filter_predicate is not None:
                filters[sub.table] = sub.filter_predicate
        if sub.is_join and sub.join is not None:
            joins.append(sub.join)
    return tables, joins, filters


def _simple_cards(plan, source):
    """The estimator-free sources: read rows straight off the plan."""
    cards = {}
    if source == "optimizer":
        for node in plan.iter_nodes():
            cards[id(node)] = float(node.est_rows)
    else:  # exact
        for node in plan.iter_nodes():
            rows = node.true_rows if node.true_rows is not None else node.est_rows
            cards[id(node)] = float(rows)
    return cards


def _rescale_nested_loops(plan, cards):
    # Nested-loop inner index scans report per-loop rows (as in EXPLAIN);
    # rescale the subquery estimate accordingly.
    for node in plan.iter_nodes():
        if node.op_name == "NestedLoopJoin" and node.children[1].is_scan:
            outer, inner = node.children
            loops = max(cards[id(outer)], 1.0)
            cards[id(inner)] = max(cards[id(node)] / loops, 0.0)
    return cards


def _deepdb_cards_batched(db, plan, estimator):
    """Fast DeepDB walk: cached estimator entry points, subtree query parts
    accumulated bottom-up in the same pass (no re-walk per join node).

    The accumulated (tables, joins, filters) match the per-node re-walk of
    the reference exactly — same post-order append order, same dict
    insertion order — so estimator calls receive identical arguments and the
    sampler consumes an identical RNG stream.
    """
    cards = {}
    scan_rows, join_rows = estimator.scan_rows, estimator.join_rows
    nested_loops = []

    def visit(node):
        """Annotate the subtree; returns its (tables, joins, filters)."""
        child_parts = [visit(child) for child in node.children]
        if child_parts:
            tables, joins, filters = child_parts[0]
            for more_tables, more_joins, more_filters in child_parts[1:]:
                tables += more_tables
                joins += more_joins
                filters.update(more_filters)
        else:
            tables, joins, filters = [], [], {}

        op_name = node.op_name
        if op_name in _SCAN_OPS:
            tables.append(node.table)
            if node.filter_predicate is not None:
                filters[node.table] = node.filter_predicate
            value = scan_rows(db, node.table, node.filter_predicate)
        elif op_name in _JOIN_OPS:
            if node.join is not None:
                joins.append(node.join)
            value = join_rows(db, set(tables), joins, filters)
            if (op_name == "NestedLoopJoin"
                    and node.children[1].op_name in _SCAN_OPS):
                nested_loops.append(node)
        elif op_name in _PASSTHROUGH_OPS:
            value = cards[id(node.children[0])]
        elif op_name == "Aggregate":
            value = 1.0
        elif op_name == "HashAggregate":
            input_rows = cards[id(node.children[0])]
            groups = 1.0
            for table, column in node.group_by:
                groups *= max(db.column_stats(table, column).ndistinct, 1)
            value = max(1.0, min(groups, input_rows))
        else:
            value = float(node.est_rows)
        cards[id(node)] = float(value)
        return tables, joins, filters

    visit(plan)
    # Same fix-up as _rescale_nested_loops, over the nodes collected during
    # the walk (post-order matches iter_nodes order) instead of a re-walk.
    for node in nested_loops:
        outer, inner = node.children
        loops = max(cards[id(outer)], 1.0)
        cards[id(inner)] = max(cards[id(node)] / loops, 0.0)
    return cards


def _deepdb_cards_reference(db, plan, scan_rows, join_rows):
    """Original recursive DeepDB walk: per-join-node subtree re-walks."""
    cards = {}

    def visit(node):
        for child in node.children:
            visit(child)
        if node.is_scan:
            value = scan_rows(db, node.table, node.filter_predicate)
        elif node.is_join:
            tables, joins, filters = _subtree_query_parts(node)
            value = join_rows(db, set(tables), joins, filters)
        elif node.op_name in _PASSTHROUGH_OPS:
            value = cards[id(node.children[0])]
        elif node.op_name == "Aggregate":
            value = 1.0
        elif node.op_name == "HashAggregate":
            input_rows = cards[id(node.children[0])]
            groups = 1.0
            for table, column in node.group_by:
                groups *= max(db.column_stats(table, column).ndistinct, 1)
            value = max(1.0, min(groups, input_rows))
        else:
            value = float(node.est_rows)
        cards[id(node)] = float(value)

    visit(plan)
    return _rescale_nested_loops(plan, cards)


def annotate_cardinalities(db, plan, source, estimator=None):
    """Return ``{id(node): cardinality}`` for every node of ``plan``.

    For ``"deepdb"`` an existing :class:`DataDrivenEstimator` for ``db``
    should be passed to avoid rebuilding models per plan; the estimator is
    primed with the plan's predicates up front so every mask / selectivity
    is evaluated once, vectorized, regardless of how many join nodes
    revisit it.
    """
    if source not in CARD_SOURCES:
        raise ValueError(f"unknown cardinality source {source!r}")
    if source != "deepdb":
        return _simple_cards(plan, source)

    if estimator is None:
        from .datadriven import DataDrivenEstimator
        estimator = DataDrivenEstimator(db)
    prime = getattr(estimator, "prime_plan", None)
    if prime is not None:
        prime(db, plan)
    perfstats.increment("annotate.batched")
    return _deepdb_cards_batched(db, plan, estimator)


def annotate_cardinalities_reference(db, plan, source, estimator=None):
    """Original recursive annotation (executable spec for tests/bench).

    DeepDB estimates go through the estimator's uncached ``*_reference``
    entry points: one full-table scan per predicate visit and the per-row
    sampling loop.  :func:`annotate_cardinalities` must produce bit-identical
    cardinalities from the same estimator state.
    """
    if source not in CARD_SOURCES:
        raise ValueError(f"unknown cardinality source {source!r}")
    if source != "deepdb":
        return _simple_cards(plan, source)

    if estimator is None:
        from .datadriven import DataDrivenEstimator
        estimator = DataDrivenEstimator(db)
    scan_rows = getattr(estimator, "scan_rows_reference", estimator.scan_rows)
    join_rows = getattr(estimator, "join_rows_reference", estimator.join_rows)
    perfstats.increment("annotate.reference")
    return _deepdb_cards_reference(db, plan, scan_rows, join_rows)
