"""Logical SPAJ queries (Select-Project-Aggregate-Join).

This is the query class the paper's benchmark generator produces (§6.3):
foreign-key joins over a connected table subset, per-table filter predicates,
and aggregates, optionally with GROUP BY and ORDER BY.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .predicates import predicate_columns

__all__ = ["JoinEdge", "AggregateSpec", "Query", "AGG_FUNCTIONS"]

AGG_FUNCTIONS = ("count", "sum", "avg", "min", "max")


@dataclass(frozen=True)
class JoinEdge:
    """Equi-join ``child.child_column = parent.parent_column`` (FK join)."""

    child_table: str
    child_column: str
    parent_table: str
    parent_column: str

    @classmethod
    def from_foreign_key(cls, fk):
        return cls(fk.child_table, fk.child_column, fk.parent_table, fk.parent_column)

    def tables(self):
        return {self.child_table, self.parent_table}

    def describe(self):
        return (f"{self.child_table}.{self.child_column}="
                f"{self.parent_table}.{self.parent_column}")


@dataclass(frozen=True)
class AggregateSpec:
    """One output aggregate, e.g. ``MIN(t.production_year)`` or ``COUNT(*)``."""

    func: str
    table: str = None
    column: str = None

    def __post_init__(self):
        if self.func not in AGG_FUNCTIONS:
            raise ValueError(f"unknown aggregate {self.func!r}")
        if self.func != "count" and (self.table is None or self.column is None):
            raise ValueError(f"{self.func} requires a column")

    def describe(self):
        target = "*" if self.column is None else f"{self.table}.{self.column}"
        return f"{self.func.upper()}({target})"


@dataclass(frozen=True)
class Query:
    """A logical query over one database."""

    tables: tuple
    joins: tuple = ()
    filters: dict = field(default_factory=dict)  # table -> predicate root
    aggregates: tuple = (AggregateSpec("count"),)
    group_by: tuple = ()   # tuple of (table, column)
    order_by: tuple = ()   # tuple of (table, column); sorts aggregate output

    def __post_init__(self):
        tables = set(self.tables)
        if not tables:
            raise ValueError("query needs at least one table")
        for join in self.joins:
            if not join.tables() <= tables:
                raise ValueError(f"join {join.describe()} references missing table")
        for table in self.filters:
            if table not in tables:
                raise ValueError(f"filter on table {table!r} not in query")
        for agg in self.aggregates:
            if agg.table is not None and agg.table not in tables:
                raise ValueError(f"aggregate on missing table {agg.table!r}")
        if len(self.joins) < len(tables) - 1:
            raise ValueError("join graph does not connect all tables")

    @property
    def n_joins(self):
        return len(self.joins)

    def referenced_columns(self, table):
        """Columns of ``table`` needed above the scan (joins, aggs, grouping)."""
        needed = set()
        for join in self.joins:
            if join.child_table == table:
                needed.add(join.child_column)
            if join.parent_table == table:
                needed.add(join.parent_column)
        for agg in self.aggregates:
            if agg.table == table and agg.column is not None:
                needed.add(agg.column)
        for group_table, group_column in self.group_by:
            if group_table == table:
                needed.add(group_column)
        for order_table, order_column in self.order_by:
            if order_table == table:
                needed.add(order_column)
        return needed

    def filter_columns(self, table):
        predicate = self.filters.get(table)
        if predicate is None:
            return set()
        return {col for tab, col in predicate_columns(predicate) if tab == table}

    def describe(self):
        """Compact SQL-ish rendering for logs and examples."""
        selects = ", ".join(a.describe() for a in self.aggregates)
        joins = " AND ".join(j.describe() for j in self.joins)
        filters = " AND ".join(p.describe() for p in self.filters.values())
        sql = f"SELECT {selects} FROM {', '.join(self.tables)}"
        where = " AND ".join(x for x in [joins, filters] if x)
        if where:
            sql += f" WHERE {where}"
        if self.group_by:
            sql += " GROUP BY " + ", ".join(f"{t}.{c}" for t, c in self.group_by)
        if self.order_by:
            sql += " ORDER BY " + ", ".join(f"{t}.{c}" for t, c in self.order_by)
        return sql
