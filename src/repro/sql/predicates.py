"""Filter predicates: typed trees of comparisons and boolean connectives.

The workload generator produces these, the executor evaluates them, the
optimizer estimates their selectivity, and the zero-shot featurization
encodes their *structure* (operators, data types, literal complexity) but
never the literals themselves — the paper's key transferability idea.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["PredOp", "Comparison", "BooleanPredicate", "conjunction",
           "disjunction", "iter_predicate_nodes", "predicate_columns",
           "like_pattern_complexity"]


class PredOp(enum.Enum):
    """Comparison operators (the predicate-node ``operator`` feature)."""

    EQ = "="
    NEQ = "!="
    LT = "<"
    LEQ = "<="
    GT = ">"
    GEQ = ">="
    IN = "IN"
    LIKE = "LIKE"
    NOT_LIKE = "NOT LIKE"
    IS_NULL = "IS NULL"
    IS_NOT_NULL = "IS NOT NULL"
    AND = "AND"
    OR = "OR"

    @property
    def is_range(self):
        return self in (PredOp.LT, PredOp.LEQ, PredOp.GT, PredOp.GEQ)

    @property
    def is_boolean(self):
        return self in (PredOp.AND, PredOp.OR)

    @property
    def needs_literal(self):
        return self not in (PredOp.IS_NULL, PredOp.IS_NOT_NULL,
                            PredOp.AND, PredOp.OR)


def like_pattern_complexity(pattern):
    """The paper's ``literal_feat`` for LIKE: wildcard count + length/10."""
    wildcards = pattern.count("%") + pattern.count("_")
    return wildcards + len(pattern) / 10.0


@dataclass(frozen=True)
class Comparison:
    """A leaf predicate ``table.column <op> literal``.

    ``literal`` is a number for numeric columns, a string for dictionary
    columns, a list for IN, a pattern string for LIKE, and ``None`` for the
    NULL tests.
    """

    table: str
    column: str
    op: PredOp
    literal: object = None

    def __post_init__(self):
        if self.op.is_boolean:
            raise ValueError("Comparison cannot use a boolean connective")
        if self.op.needs_literal and self.literal is None:
            raise ValueError(f"{self.op.value} requires a literal")
        if self.op == PredOp.IN and not isinstance(self.literal, (list, tuple)):
            raise ValueError("IN requires a list literal")
        if self.op in (PredOp.LIKE, PredOp.NOT_LIKE) and not isinstance(self.literal, str):
            raise ValueError("LIKE requires a string pattern")

    @property
    def literal_feature(self):
        """Literal complexity feature (never the literal value itself)."""
        if self.op == PredOp.IN:
            return float(len(self.literal))
        if self.op in (PredOp.LIKE, PredOp.NOT_LIKE):
            return like_pattern_complexity(self.literal)
        return 1.0

    def describe(self):
        if self.op in (PredOp.IS_NULL, PredOp.IS_NOT_NULL):
            return f"{self.table}.{self.column} {self.op.value}"
        return f"{self.table}.{self.column} {self.op.value} {self.literal!r}"


@dataclass(frozen=True)
class BooleanPredicate:
    """AND/OR over child predicates."""

    op: PredOp
    children: tuple = field(default=())

    def __post_init__(self):
        if not self.op.is_boolean:
            raise ValueError("BooleanPredicate requires AND or OR")
        if len(self.children) < 2:
            raise ValueError(f"{self.op.value} needs at least two children")

    @property
    def literal_feature(self):
        return float(len(self.children))

    def describe(self):
        inner = f" {self.op.value} ".join(c.describe() for c in self.children)
        return f"({inner})"


def conjunction(predicates):
    """AND of the given predicates (collapses the 0/1-child cases)."""
    predicates = [p for p in predicates if p is not None]
    if not predicates:
        return None
    if len(predicates) == 1:
        return predicates[0]
    return BooleanPredicate(PredOp.AND, tuple(predicates))


def disjunction(predicates):
    predicates = [p for p in predicates if p is not None]
    if not predicates:
        return None
    if len(predicates) == 1:
        return predicates[0]
    return BooleanPredicate(PredOp.OR, tuple(predicates))


def iter_predicate_nodes(predicate):
    """Pre-order iteration over all nodes of a predicate tree."""
    if predicate is None:
        return
    yield predicate
    if isinstance(predicate, BooleanPredicate):
        for child in predicate.children:
            yield from iter_predicate_nodes(child)


def predicate_columns(predicate):
    """Set of ``(table, column)`` pairs referenced by the predicate."""
    return {(node.table, node.column)
            for node in iter_predicate_nodes(predicate)
            if isinstance(node, Comparison)}
