"""Logical query model: predicates, SPAJ queries, vectorized evaluation."""

from .predicates import (PredOp, Comparison, BooleanPredicate, conjunction,
                         disjunction, iter_predicate_nodes, predicate_columns,
                         like_pattern_complexity)
from .query import JoinEdge, AggregateSpec, Query, AGG_FUNCTIONS
from .eval import evaluate_predicate, like_to_regex, matching_codes_for_like

__all__ = [
    "PredOp", "Comparison", "BooleanPredicate", "conjunction", "disjunction",
    "iter_predicate_nodes", "predicate_columns", "like_pattern_complexity",
    "JoinEdge", "AggregateSpec", "Query", "AGG_FUNCTIONS",
    "evaluate_predicate", "like_to_regex", "matching_codes_for_like",
]
