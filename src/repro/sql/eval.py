"""Vectorized predicate evaluation over dictionary-encoded columns.

WHERE-clause semantics: three-valued logic collapses to "NULL comparisons are
false"; IS [NOT] NULL tests the null markers directly.  String LIKE patterns
are translated to regexes once, evaluated against the column dictionary, and
mapped back onto the integer codes — the standard trick for dictionary
encodings.
"""

from __future__ import annotations

import re

import numpy as np

from ..storage import NULL_CODE, Table
from .predicates import BooleanPredicate, Comparison, PredOp

__all__ = ["like_to_regex", "evaluate_predicate", "matching_codes_for_like"]


def like_to_regex(pattern):
    """Translate a SQL LIKE pattern (``%``/``_`` wildcards) to a regex."""
    out = []
    for char in pattern:
        if char == "%":
            out.append(".*")
        elif char == "_":
            out.append(".")
        else:
            out.append(re.escape(char))
    return re.compile("^" + "".join(out) + "$")


def matching_codes_for_like(dictionary, pattern):
    """Dictionary codes whose string matches the LIKE pattern."""
    regex = like_to_regex(pattern)
    return np.array([code for code, word in enumerate(dictionary)
                     if regex.match(word)], dtype=np.int64)


def _comparison_mask(node: Comparison, table: Table):
    column = table.column(node.column)
    values = column.values

    if node.op == PredOp.IS_NULL:
        return column.null_mask
    if node.op == PredOp.IS_NOT_NULL:
        return ~column.null_mask

    not_null = ~column.null_mask

    if column.dtype.is_numeric:
        literal = node.literal
        if node.op == PredOp.EQ:
            return not_null & (values == literal)
        if node.op == PredOp.NEQ:
            return not_null & (values != literal)
        if node.op == PredOp.LT:
            return not_null & (values < literal)
        if node.op == PredOp.LEQ:
            return not_null & (values <= literal)
        if node.op == PredOp.GT:
            return not_null & (values > literal)
        if node.op == PredOp.GEQ:
            return not_null & (values >= literal)
        if node.op == PredOp.IN:
            return not_null & np.isin(values, np.asarray(node.literal, dtype=np.float64))
        raise ValueError(f"operator {node.op.value} unsupported on numeric column")

    # Dictionary-encoded column: resolve string literals to codes.
    dictionary = column.dictionary
    code_of = column.dictionary_index

    if node.op in (PredOp.LIKE, PredOp.NOT_LIKE):
        codes = matching_codes_for_like(dictionary, node.literal)
        mask = np.isin(values, codes)
        if node.op == PredOp.NOT_LIKE:
            return not_null & ~mask
        return not_null & mask
    if node.op == PredOp.EQ:
        code = code_of.get(node.literal, None)
        if code is None:
            return np.zeros(len(values), dtype=bool)
        return values == code
    if node.op == PredOp.NEQ:
        code = code_of.get(node.literal, NULL_CODE)
        return not_null & (values != code)
    if node.op == PredOp.IN:
        codes = np.array([code_of[v] for v in node.literal if v in code_of],
                         dtype=np.int64)
        return np.isin(values, codes)
    if node.op.is_range:
        # Range over dictionary columns: compare lexicographically via dict.
        order = {word: rank for rank, word in enumerate(sorted(dictionary))}
        literal_rank = order.get(node.literal)
        if literal_rank is None:
            sorted_words = sorted(dictionary)
            import bisect
            literal_rank = bisect.bisect_left(sorted_words, node.literal) - 0.5
        ranks = np.full(len(dictionary), -1, dtype=np.float64)
        for word, rank in order.items():
            ranks[code_of[word]] = rank
        value_ranks = np.where(values == NULL_CODE, np.nan, ranks[np.clip(values, 0, None)])
        if node.op == PredOp.LT:
            return not_null & (value_ranks < literal_rank)
        if node.op == PredOp.LEQ:
            return not_null & (value_ranks <= literal_rank)
        if node.op == PredOp.GT:
            return not_null & (value_ranks > literal_rank)
        return not_null & (value_ranks >= literal_rank)
    raise ValueError(f"operator {node.op.value} unsupported on dictionary column")


def evaluate_predicate(predicate, table: Table):
    """Boolean row mask for ``predicate`` over ``table`` (None = all rows)."""
    if predicate is None:
        return np.ones(len(table), dtype=bool)
    if isinstance(predicate, Comparison):
        return _comparison_mask(predicate, table)
    if isinstance(predicate, BooleanPredicate):
        masks = [evaluate_predicate(child, table) for child in predicate.children]
        combined = masks[0]
        for mask in masks[1:]:
            combined = (combined & mask) if predicate.op == PredOp.AND else (combined | mask)
        return combined
    raise TypeError(f"unknown predicate type {type(predicate)!r}")
