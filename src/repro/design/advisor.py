"""Physical design advisor driven by zero-shot cost estimates (§5.2).

The advisor enumerates candidate single-column indexes, re-plans the
workload under each candidate design, and asks the zero-shot model for the
predicted total runtime — *without executing anything* on the target
database.  Greedy selection keeps adding the index with the largest
predicted saving.  This is the design-advisor use case the paper motivates:
such tools crucially depend on cost estimates for configurations that do
not exist yet.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..optimizer import PlannerConfig, plan_query
from ..sql import predicate_columns

__all__ = ["AdvisorChoice", "IndexAdvisor"]


@dataclass
class _PseudoRecord:
    """Record-shaped wrapper for unexecuted plans (prediction only)."""

    query: object
    plan: object
    db_name: str
    runtime_ms: float = float("nan")


@dataclass
class AdvisorChoice:
    """One greedy advisor step."""

    index: tuple                 # (table, column)
    predicted_total_ms: float
    baseline_total_ms: float

    @property
    def predicted_saving_ms(self):
        return self.baseline_total_ms - self.predicted_total_ms


class IndexAdvisor:
    """Greedy index selection using zero-shot cost predictions."""

    def __init__(self, cost_model, planner_config=None, cards="deepdb",
                 estimator_cache=None):
        self.cost_model = cost_model
        self.planner_config = planner_config or PlannerConfig()
        self.cards = cards
        self.estimator_cache = estimator_cache

    # ------------------------------------------------------------------
    def candidate_indexes(self, db, queries):
        """Columns worth indexing: FK join keys and filtered columns."""
        candidates = set()
        for fk in db.schema.foreign_keys:
            candidates.add((fk.child_table, fk.child_column))
        for query in queries:
            for predicate in query.filters.values():
                for table, column in predicate_columns(predicate):
                    if db.column(table, column).dtype.is_numeric:
                        candidates.add((table, column))
        return sorted(candidates - set(db.indexes))

    def predicted_workload_ms(self, db, queries):
        """Total predicted runtime of the workload under the current design."""
        records = []
        for query in queries:
            plan = plan_query(db, query, config=self.planner_config)
            records.append(_PseudoRecord(query=query, plan=plan,
                                         db_name=db.name))
        predictions = self.cost_model.predict_records(
            records, {db.name: db}, cards=self.cards,
            estimator_cache=self.estimator_cache)
        return float(np.sum(predictions))

    # ------------------------------------------------------------------
    def recommend(self, db, queries, max_indexes=3, min_saving_fraction=0.02):
        """Greedily choose up to ``max_indexes`` indexes for the workload.

        Returns the list of :class:`AdvisorChoice` steps taken.  The database
        is left with the recommended indexes created; callers that only want
        the recommendation can drop them afterwards.
        """
        choices = []
        baseline = self.predicted_workload_ms(db, queries)
        for _ in range(max_indexes):
            best = None
            for table, column in self.candidate_indexes(db, queries):
                db.create_index(table, column)
                try:
                    predicted = self.predicted_workload_ms(db, queries)
                finally:
                    db.drop_index(table, column)
                if best is None or predicted < best[1]:
                    best = ((table, column), predicted)
            if best is None:
                break
            index, predicted = best
            if baseline - predicted < min_saving_fraction * baseline:
                break
            db.create_index(*index)
            choices.append(AdvisorChoice(index=index,
                                         predicted_total_ms=predicted,
                                         baseline_total_ms=baseline))
            baseline = predicted
        return choices
