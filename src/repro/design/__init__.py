"""Physical-design extension (§5.2): index workloads and the design advisor.

Index-mode *training* workloads are produced by
:func:`repro.workloads.generate_trace` with ``index_mode=True`` (random
indexes created/dropped during execution); this package adds the design
advisor that exploits a trained zero-shot model to evaluate candidate
designs without executing queries.
"""

from .advisor import AdvisorChoice, IndexAdvisor

__all__ = ["AdvisorChoice", "IndexAdvisor"]
