"""Schema metadata: table definitions and foreign-key relationships."""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

__all__ = ["ForeignKey", "Schema"]


@dataclass(frozen=True)
class ForeignKey:
    """An N:1 relationship ``child.child_column -> parent.parent_column``."""

    child_table: str
    child_column: str
    parent_table: str
    parent_column: str

    def involves(self, table_a, table_b):
        pair = {self.child_table, self.parent_table}
        return pair == {table_a, table_b}


@dataclass
class Schema:
    """All tables of a database plus their foreign keys."""

    table_names: list
    foreign_keys: list = field(default_factory=list)

    def __post_init__(self):
        known = set(self.table_names)
        for fk in self.foreign_keys:
            if fk.child_table not in known or fk.parent_table not in known:
                raise ValueError(f"foreign key {fk} references unknown table")

    def join_graph(self):
        """Undirected graph with one edge per foreign key (multi-FK safe)."""
        graph = nx.MultiGraph()
        graph.add_nodes_from(self.table_names)
        for fk in self.foreign_keys:
            graph.add_edge(fk.child_table, fk.parent_table, fk=fk)
        return graph

    def fks_between(self, table_a, table_b):
        return [fk for fk in self.foreign_keys if fk.involves(table_a, table_b)]

    def fks_of_table(self, table):
        return [fk for fk in self.foreign_keys
                if table in (fk.child_table, fk.parent_table)]

    def connected_subsets(self, start, size, rng):
        """Random connected set of ``size`` tables containing ``start``.

        Used by the workload generator to pick joinable table sets.  Returns
        the table list and the foreign keys forming the spanning join tree.
        """
        graph = self.join_graph()
        chosen = [start]
        edges = []
        frontier = list(graph.edges(start, keys=True))
        while len(chosen) < size and frontier:
            pick = frontier.pop(int(rng.integers(len(frontier))))
            u, v, key = pick
            other = v if u in chosen else u
            if other in chosen:
                continue
            chosen.append(other)
            edges.append(graph.edges[u, v, key]["fk"])
            frontier.extend(edge for edge in graph.edges(other, keys=True))
        return chosen, edges
