"""Catalog statistics: the database-dependent inputs of the paper's Table 1.

Per table we keep ``reltuples`` and ``relpages`` (8 KiB pages, as in
Postgres); per column the average byte width, physical ordering correlation
(``pg_stats.correlation``), data type, number of distinct values, NULL
fraction, plus an equi-depth histogram and a most-common-values list used by
the traditional (optimizer) cardinality estimator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .column import Column, DataType

__all__ = ["ColumnStats", "TableStats", "PAGE_SIZE_BYTES",
           "compute_column_stats", "compute_table_stats"]

PAGE_SIZE_BYTES = 8192
_HISTOGRAM_BUCKETS = 64
_MCV_LIMIT = 32


@dataclass
class ColumnStats:
    """Statistics for one column (transferable across databases)."""

    name: str
    dtype: DataType
    width: float
    ndistinct: int
    null_frac: float
    correlation: float
    min_value: float = float("nan")
    max_value: float = float("nan")
    histogram_bounds: np.ndarray = field(default=None, repr=False)
    mcv_values: np.ndarray = field(default=None, repr=False)
    mcv_fractions: np.ndarray = field(default=None, repr=False)


@dataclass
class TableStats:
    """Statistics for one table."""

    name: str
    reltuples: int
    row_width: float
    relpages: int
    columns: dict = field(default_factory=dict)


def _ordering_correlation(values):
    """Correlation between value rank and physical row position.

    This is Postgres' ``correlation`` statistic: +1 for perfectly sorted
    columns (cheap correlated index scans), ~0 for random placement.
    """
    n = values.size
    if n < 2:
        return 1.0
    ranks = np.argsort(np.argsort(values, kind="stable"))
    positions = np.arange(n, dtype=np.float64)
    rank_std = ranks.std()
    if rank_std == 0.0:
        return 1.0
    corr = np.corrcoef(ranks.astype(np.float64), positions)[0, 1]
    if not np.isfinite(corr):
        return 0.0
    return float(corr)


def _equi_depth_bounds(values, buckets=_HISTOGRAM_BUCKETS):
    """Equi-depth histogram bucket bounds over non-null values."""
    if values.size == 0:
        return np.array([])
    quantiles = np.linspace(0.0, 1.0, buckets + 1)
    return np.quantile(values, quantiles)


def compute_column_stats(column: Column) -> ColumnStats:
    """Analyse a column (the equivalent of ``ANALYZE``)."""
    valid = column.non_null()
    ndistinct = column.n_distinct()
    null_frac = column.null_frac
    correlation = _ordering_correlation(valid) if valid.size else 1.0

    min_value = float(valid.min()) if valid.size else float("nan")
    max_value = float(valid.max()) if valid.size else float("nan")

    histogram_bounds = None
    mcv_values = mcv_fractions = None
    if valid.size:
        uniques, counts = np.unique(valid, return_counts=True)
        order = np.argsort(counts)[::-1]
        top = order[:_MCV_LIMIT]
        # Only keep MCVs that are genuinely common (above uniform frequency).
        uniform = valid.size / max(ndistinct, 1)
        keep = counts[top] > uniform
        mcv_values = uniques[top][keep]
        mcv_fractions = counts[top][keep] / column.values.size
        histogram_bounds = _equi_depth_bounds(valid)

    return ColumnStats(
        name=column.name,
        dtype=column.dtype,
        width=column.byte_width,
        ndistinct=ndistinct,
        null_frac=null_frac,
        correlation=correlation,
        min_value=min_value,
        max_value=max_value,
        histogram_bounds=histogram_bounds,
        mcv_values=mcv_values,
        mcv_fractions=mcv_fractions,
    )


def compute_table_stats(name, columns) -> TableStats:
    """Analyse a table: per-column stats plus reltuples/relpages."""
    column_stats = {col.name: compute_column_stats(col) for col in columns}
    reltuples = len(columns[0]) if columns else 0
    row_width = sum(stats.width for stats in column_stats.values())
    # 24-byte per-row header, mirroring Postgres heap tuples.
    bytes_total = reltuples * (row_width + 24.0)
    relpages = max(1, int(np.ceil(bytes_total / PAGE_SIZE_BYTES)))
    return TableStats(
        name=name,
        reltuples=reltuples,
        row_width=row_width,
        relpages=relpages,
        columns=column_stats,
    )
