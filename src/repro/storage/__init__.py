"""In-memory relational storage engine: columns, tables, schemas, indexes,
and Postgres-style catalog statistics."""

from .column import Column, DataType, NULL_CODE
from .statistics import (ColumnStats, TableStats, PAGE_SIZE_BYTES,
                         compute_column_stats, compute_table_stats)
from .index import Index
from .schema import ForeignKey, Schema
from .table import Table
from .database import Database

__all__ = [
    "Column", "DataType", "NULL_CODE",
    "ColumnStats", "TableStats", "PAGE_SIZE_BYTES",
    "compute_column_stats", "compute_table_stats",
    "Index", "ForeignKey", "Schema", "Table", "Database",
]
