"""Secondary indexes (B-tree equivalent: sorted key + row-id arrays).

The index supports equality and range lookups and exposes the structural
properties the optimizer and the runtime simulator need: height and a
clustering factor derived from the column's physical ordering correlation
(uncorrelated heaps make index scans pay a random page read per match).
"""

from __future__ import annotations

import numpy as np

__all__ = ["Index"]

_BTREE_FANOUT = 256


class Index:
    """A secondary index over one column of a table."""

    def __init__(self, table_name, column_name, values):
        self.table_name = table_name
        self.column_name = column_name
        order = np.argsort(values, kind="stable")
        self._keys = np.asarray(values, dtype=np.float64)[order]
        self._row_ids = order.astype(np.int64)
        # NULLs (NaN keys) sort to the end; equality/range lookups never
        # match them, mirroring b-tree semantics.
        self._n_valid = int(np.sum(~np.isnan(self._keys)))
        valid = self._keys[: self._n_valid]
        # Structural facts equality probes can specialize on: strictly
        # increasing keys have at most one match per probe, and a dense
        # integer domain (0..n-1, the generated primary keys) resolves a
        # probe by direct indexing with no search at all.
        self.unique_keys = bool(np.all(valid[1:] > valid[:-1]))
        self.dense_keys = (self.unique_keys
                           and self._n_valid == len(self._keys)
                           and bool(np.array_equal(
                               valid, np.arange(valid.size, dtype=np.float64))))

    @property
    def name(self):
        return f"idx_{self.table_name}_{self.column_name}"

    def __len__(self):
        return len(self._keys)

    @property
    def height(self):
        """B-tree height for the simulated fanout."""
        n = max(len(self._keys), 2)
        return max(1, int(np.ceil(np.log(n) / np.log(_BTREE_FANOUT))))

    def lookup_eq(self, value):
        """Row ids whose key equals ``value``."""
        left = np.searchsorted(self._keys[: self._n_valid], value, side="left")
        right = np.searchsorted(self._keys[: self._n_valid], value, side="right")
        return self._row_ids[left:right]

    def eq_bounds_batch(self, values):
        """Vectorized equality probe for many keys at once.

        Returns ``(left, right, row_ids)``: key ``values[i]`` matches the
        sorted-order slice ``row_ids[left[i]:right[i]]`` — exactly what
        ``lookup_eq`` would return per key, without a python call per key.
        NaN keys produce empty slices (b-tree semantics, as in ``lookup_eq``).
        """
        keys = self._keys[: self._n_valid]
        values = np.asarray(values, dtype=np.float64)
        return (keys.searchsorted(values, side="left"),
                keys.searchsorted(values, side="right"),
                self._row_ids)

    def lookup_range(self, low=None, high=None, low_inclusive=True, high_inclusive=True):
        """Row ids with keys inside the given (possibly open) range."""
        keys = self._keys[: self._n_valid]
        left = 0
        right = self._n_valid
        if low is not None and not np.isnan(low):
            side = "left" if low_inclusive else "right"
            left = np.searchsorted(keys, low, side=side)
        if high is not None and not np.isnan(high):
            side = "right" if high_inclusive else "left"
            right = np.searchsorted(keys, high, side=side)
        if right < left:
            right = left
        return self._row_ids[left:right]

    def sorted_valid(self):
        """The non-NaN ``(keys, row_ids)`` prefix in stable sort order.

        Key ascending, ties by row id — the order a stable ``argsort`` of
        the raw column produces after dropping NaNs.  The trace executor
        probes this shared view instead of re-sorting per join call.
        """
        return self._keys[: self._n_valid], self._row_ids[: self._n_valid]

    def lookup_in(self, values):
        """Row ids whose key is any of ``values`` (IN-list probe)."""
        parts = [self.lookup_eq(v) for v in values]
        if not parts:
            return np.array([], dtype=np.int64)
        return np.concatenate(parts)
