"""Typed columns backed by numpy arrays.

Representation choices:

* ``INT`` / ``FLOAT`` columns store ``float64`` values with ``nan`` as NULL
  (float64 represents integers exactly up to 2**53, far beyond our scales).
* ``CATEGORICAL`` / ``STRING`` columns store ``int64`` dictionary codes with
  ``-1`` as NULL plus a ``dictionary`` list mapping code -> string.  String
  predicates (LIKE / regex) are evaluated once on the dictionary and mapped
  onto the codes, which mirrors dictionary-encoded execution in real systems.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

__all__ = ["DataType", "Column", "NULL_CODE"]

NULL_CODE = -1


class DataType(enum.Enum):
    """Logical column types; the set mirrors the paper's data_type feature."""

    INT = "int"
    FLOAT = "float"
    CATEGORICAL = "categorical"
    STRING = "string"

    @property
    def is_numeric(self):
        return self in (DataType.INT, DataType.FLOAT)

    @property
    def is_dictionary(self):
        return self in (DataType.CATEGORICAL, DataType.STRING)


@dataclass
class Column:
    """A single named, typed column of data."""

    name: str
    dtype: DataType
    values: np.ndarray
    dictionary: list = field(default=None, repr=False)
    _dictionary_index: dict = field(default=None, repr=False, compare=False)
    _null_mask_cache: tuple = field(default=None, repr=False, compare=False)

    def __post_init__(self):
        if self.dtype.is_numeric:
            self.values = np.asarray(self.values, dtype=np.float64)
            if self.dictionary is not None:
                raise ValueError("numeric columns must not carry a dictionary")
        else:
            self.values = np.asarray(self.values, dtype=np.int64)
            if self.dictionary is None:
                raise ValueError(f"column {self.name!r}: dictionary columns "
                                 "require a code dictionary")
            if self.values.size and self.values.max(initial=NULL_CODE) >= len(self.dictionary):
                raise ValueError(f"column {self.name!r}: code out of range")

    # ------------------------------------------------------------------
    def __len__(self):
        return len(self.values)

    @property
    def dictionary_index(self):
        """``word -> code`` map (built once; predicate evaluation hot path)."""
        index = self._dictionary_index
        if index is None or len(index) != len(self.dictionary):
            index = {word: code for code, word in enumerate(self.dictionary)}
            self._dictionary_index = index
        return index

    @property
    def null_mask(self):
        """Boolean mask of NULL entries (cached per backing array).

        Appends replace ``values`` with a new array, which invalidates the
        cache via the identity check; callers treat the mask as read-only.
        """
        values = self.values
        cached = self._null_mask_cache
        if cached is not None and cached[0] is values:
            return cached[1]
        mask = (np.isnan(values) if self.dtype.is_numeric
                else values == NULL_CODE)
        self._null_mask_cache = (values, mask)
        return mask

    @property
    def null_frac(self):
        if len(self.values) == 0:
            return 0.0
        return float(self.null_mask.mean())

    def non_null(self):
        """Values with NULLs removed."""
        return self.values[~self.null_mask]

    @property
    def byte_width(self):
        """Average number of bytes to represent a value (Table 1 feature)."""
        if self.dtype == DataType.INT:
            return 8.0
        if self.dtype == DataType.FLOAT:
            return 8.0
        if not self.dictionary:
            return 1.0
        lengths = np.array([len(s) for s in self.dictionary], dtype=np.float64)
        valid = self.values[self.values != NULL_CODE]
        if valid.size == 0:
            return float(lengths.mean()) if lengths.size else 1.0
        return float(lengths[valid].mean())

    def n_distinct(self):
        valid = self.non_null()
        if valid.size == 0:
            return 0
        return int(np.unique(valid).size)

    def take(self, row_ids):
        """New column restricted to ``row_ids`` (shares the dictionary)."""
        return Column(self.name, self.dtype, self.values[row_ids], self.dictionary)

    def decode(self, limit=None):
        """Human-readable python values (for debugging / examples)."""
        rows = self.values if limit is None else self.values[:limit]
        if self.dtype.is_numeric:
            return [None if np.isnan(v) else float(v) for v in rows]
        return [None if code == NULL_CODE else self.dictionary[int(code)] for code in rows]
