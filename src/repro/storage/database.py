"""A database: schema + tables + indexes + catalog access."""

from __future__ import annotations

from .index import Index
from .schema import Schema

__all__ = ["Database"]


class Database:
    """A self-contained dataset (the paper's notion of a "database").

    Holds the tables, the schema (foreign keys), secondary indexes, and gives
    access to catalog statistics.  An optional ``genspec`` records how the
    data was generated, which the update experiments (Fig. 8) use to grow the
    database with identically distributed rows.
    """

    def __init__(self, name, schema: Schema, tables, genspec=None):
        self.name = name
        self.schema = schema
        self.tables = {table.name: table for table in tables}
        missing = set(schema.table_names) - set(self.tables)
        if missing:
            raise ValueError(f"database {name!r} missing tables {sorted(missing)}")
        self.indexes = {}
        self.genspec = genspec

    # ------------------------------------------------------------------
    def __repr__(self):
        return (f"Database({self.name!r}, tables={len(self.tables)}, "
                f"indexes={len(self.indexes)})")

    def table(self, name):
        try:
            return self.tables[name]
        except KeyError:
            raise KeyError(f"database {self.name!r} has no table {name!r}") from None

    def column(self, table_name, column_name):
        return self.table(table_name).column(column_name)

    @property
    def total_rows(self):
        return sum(len(t) for t in self.tables.values())

    def fingerprint(self):
        """Cheap content fingerprint: name + per-table row counts.

        Used by the estimator and featurization caches to notice rebuilt or
        grown databases that reuse a name (appends change row counts).
        In-place value edits that keep every row count are not detected —
        callers doing that must invalidate explicitly.
        """
        return (self.name,
                tuple(sorted((name, len(table))
                             for name, table in self.tables.items())))

    # ------------------------------------------------------------------
    # Catalog
    # ------------------------------------------------------------------
    def table_stats(self, table_name):
        return self.table(table_name).stats

    def column_stats(self, table_name, column_name):
        stats = self.table(table_name).stats.columns.get(column_name)
        if stats is None:
            raise KeyError(f"no stats for {table_name}.{column_name}")
        return stats

    def analyze(self):
        """Recompute statistics for all tables (after updates)."""
        for table in self.tables.values():
            table.invalidate_stats()
            _ = table.stats

    # ------------------------------------------------------------------
    # Indexes
    # ------------------------------------------------------------------
    def create_index(self, table_name, column_name):
        """Create (or return the existing) index on ``table.column``."""
        key = (table_name, column_name)
        if key not in self.indexes:
            column = self.column(table_name, column_name)
            self.indexes[key] = Index(table_name, column_name, column.values)
        return self.indexes[key]

    def drop_index(self, table_name, column_name):
        self.indexes.pop((table_name, column_name), None)

    def index_on(self, table_name, column_name):
        return self.indexes.get((table_name, column_name))

    def rebuild_indexes(self):
        """Rebuild all indexes (required after appends)."""
        for table_name, column_name in list(self.indexes):
            column = self.column(table_name, column_name)
            self.indexes[(table_name, column_name)] = Index(
                table_name, column_name, column.values)
