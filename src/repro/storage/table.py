"""In-memory tables of typed columns."""

from __future__ import annotations

from hashlib import blake2b

import numpy as np

from .column import Column
from .statistics import compute_table_stats

__all__ = ["Table"]


class Table:
    """A named collection of equally long columns."""

    def __init__(self, name, columns):
        if not columns:
            raise ValueError(f"table {name!r} needs at least one column")
        lengths = {len(col) for col in columns}
        if len(lengths) != 1:
            raise ValueError(f"table {name!r}: ragged columns {sorted(lengths)}")
        self.name = name
        self.columns = {col.name: col for col in columns}
        if len(self.columns) != len(columns):
            raise ValueError(f"table {name!r}: duplicate column names")
        self._stats = None

    def __len__(self):
        return len(next(iter(self.columns.values())))

    def __contains__(self, column_name):
        return column_name in self.columns

    @property
    def column_names(self):
        return list(self.columns)

    def column(self, name) -> Column:
        try:
            return self.columns[name]
        except KeyError:
            raise KeyError(f"table {self.name!r} has no column {name!r}") from None

    @property
    def stats(self):
        """Table statistics; computed lazily and cached until invalidated."""
        if self._stats is None:
            self._stats = compute_table_stats(self.name, list(self.columns.values()))
        return self._stats

    def invalidate_stats(self):
        self._stats = None

    def content_fingerprint(self):
        """BLAKE2 digest of the table's full content.

        Covers column names, dtypes, dictionaries and the raw value bytes —
        unlike :meth:`Database.fingerprint` (name + row counts) this notices
        in-place value edits, so derived artifacts keyed on it (the artifact
        store's per-table SPNs) can never be served stale.  Costs one hash
        pass over the data; callers that need it repeatedly should key their
        own memo on it, not re-derive it per use.
        """
        digest = blake2b(digest_size=16)
        digest.update(self.name.encode())
        for name, col in self.columns.items():
            digest.update(name.encode())
            digest.update(col.dtype.name.encode())
            digest.update(np.ascontiguousarray(col.values).tobytes())
            if col.dictionary is not None:
                digest.update(repr(list(col.dictionary)).encode())
        return digest.hexdigest()

    def append(self, new_columns):
        """Append rows given as a dict ``column_name -> values array``.

        Dictionary columns must be appended as *codes* against the existing
        dictionary. Statistics are invalidated (re-``ANALYZE`` on next use).
        """
        missing = set(self.columns) - set(new_columns)
        if missing:
            raise ValueError(f"append to {self.name!r} missing columns {sorted(missing)}")
        lengths = {len(v) for v in new_columns.values()}
        if len(lengths) != 1:
            raise ValueError("appended columns must be equally long")
        for name, col in self.columns.items():
            extra = np.asarray(new_columns[name])
            col.values = np.concatenate([col.values, extra.astype(col.values.dtype)])
        self.invalidate_stats()

    def take(self, row_ids):
        """A new table holding only the selected rows (used in tests/examples)."""
        return Table(self.name, [col.take(row_ids) for col in self.columns.values()])
