"""Regression trees with histogram-based splits.

The building block of :mod:`repro.ml.gbdt`, which replaces LightGBM for the
paper's flattened-plan baseline (Ganapathi et al. representation).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RegressionTree"]


@dataclass
class _Node:
    value: float
    feature: int = -1
    threshold: float = 0.0
    left: "_Node" = None
    right: "_Node" = None

    @property
    def is_leaf(self):
        return self.left is None


class RegressionTree:
    """CART-style regression tree, variance-reduction splits on quantile bins."""

    def __init__(self, max_depth=4, min_samples_leaf=8, max_bins=32):
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_bins = max_bins
        self._root = None

    def fit(self, features, targets):
        x = np.asarray(features, dtype=np.float64)
        y = np.asarray(targets, dtype=np.float64)
        if x.ndim != 2:
            raise ValueError("features must be 2-D")
        if len(x) != len(y):
            raise ValueError("features and targets must align")
        self._root = self._grow(x, y, depth=0)
        return self

    def _candidate_thresholds(self, column):
        uniques = np.unique(column)
        if len(uniques) <= 1:
            return np.array([])
        if len(uniques) <= self.max_bins:
            return (uniques[:-1] + uniques[1:]) / 2.0
        quantiles = np.quantile(column, np.linspace(0, 1, self.max_bins + 1)[1:-1])
        return np.unique(quantiles)

    def _best_split(self, x, y):
        n = len(y)
        base_sse = ((y - y.mean()) ** 2).sum()
        best = None  # (gain, feature, threshold)
        for feature in range(x.shape[1]):
            column = x[:, feature]
            for threshold in self._candidate_thresholds(column):
                mask = column <= threshold
                n_left = int(mask.sum())
                if n_left < self.min_samples_leaf or n - n_left < self.min_samples_leaf:
                    continue
                left, right = y[mask], y[~mask]
                sse = (((left - left.mean()) ** 2).sum()
                       + ((right - right.mean()) ** 2).sum())
                gain = base_sse - sse
                if best is None or gain > best[0]:
                    best = (gain, feature, threshold)
        return best

    def _grow(self, x, y, depth):
        node = _Node(value=float(y.mean()))
        if depth >= self.max_depth or len(y) < 2 * self.min_samples_leaf \
                or np.allclose(y, y[0]):
            return node
        best = self._best_split(x, y)
        if best is None or best[0] <= 1e-12:
            return node
        _, feature, threshold = best
        mask = x[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(x[mask], y[mask], depth + 1)
        node.right = self._grow(x[~mask], y[~mask], depth + 1)
        return node

    def predict(self, features):
        if self._root is None:
            raise RuntimeError("tree is not fitted")
        x = np.asarray(features, dtype=np.float64)
        out = np.empty(len(x))
        for i, row in enumerate(x):
            node = self._root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.value
        return out
