"""Ordinary least squares (with optional ridge term)."""

from __future__ import annotations

import numpy as np

__all__ = ["LinearRegression"]


class LinearRegression:
    """OLS/ridge linear regression ``y = X w + b``."""

    def __init__(self, ridge=0.0):
        self.ridge = float(ridge)
        self.weights = None
        self.intercept = 0.0

    def fit(self, features, targets):
        x = np.asarray(features, dtype=np.float64)
        if x.ndim == 1:
            x = x[:, None]
        y = np.asarray(targets, dtype=np.float64)
        if len(x) != len(y):
            raise ValueError("features and targets must align")
        design = np.hstack([x, np.ones((len(x), 1))])
        gram = design.T @ design
        if self.ridge:
            penalty = self.ridge * np.eye(gram.shape[0])
            penalty[-1, -1] = 0.0  # do not penalize the intercept
            gram = gram + penalty
        solution = np.linalg.lstsq(gram, design.T @ y, rcond=None)[0]
        self.weights = solution[:-1]
        self.intercept = float(solution[-1])
        return self

    def predict(self, features):
        if self.weights is None:
            raise RuntimeError("model is not fitted")
        x = np.asarray(features, dtype=np.float64)
        if x.ndim == 1:
            x = x[:, None]
        return x @ self.weights + self.intercept
