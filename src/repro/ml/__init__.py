"""Classic-ML substrate: linear regression, regression trees, GBDT."""

from .linear import LinearRegression
from .tree import RegressionTree
from .gbdt import GradientBoostedTrees

__all__ = ["LinearRegression", "RegressionTree", "GradientBoostedTrees"]
