"""Gradient-boosted regression trees (least-squares boosting).

A compact LightGBM substitute for the flattened-plan baseline (Fig. 11):
sequential regression trees fitted to residuals with shrinkage and optional
row subsampling.
"""

from __future__ import annotations

import numpy as np

from .tree import RegressionTree

__all__ = ["GradientBoostedTrees"]


class GradientBoostedTrees:
    """Least-squares gradient boosting over regression trees."""

    def __init__(self, n_estimators=120, learning_rate=0.1, max_depth=4,
                 min_samples_leaf=8, subsample=0.9, seed=0):
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.subsample = subsample
        self.seed = seed
        self._trees = []
        self._base = 0.0

    def fit(self, features, targets):
        x = np.asarray(features, dtype=np.float64)
        y = np.asarray(targets, dtype=np.float64)
        if len(x) != len(y):
            raise ValueError("features and targets must align")
        rng = np.random.default_rng(self.seed)
        self._base = float(y.mean())
        self._trees = []
        predictions = np.full(len(y), self._base)
        n = len(y)
        for _ in range(self.n_estimators):
            residuals = y - predictions
            if self.subsample < 1.0:
                rows = rng.choice(n, size=max(int(n * self.subsample), 1),
                                  replace=False)
            else:
                rows = np.arange(n)
            tree = RegressionTree(max_depth=self.max_depth,
                                  min_samples_leaf=self.min_samples_leaf)
            tree.fit(x[rows], residuals[rows])
            step = tree.predict(x)
            predictions = predictions + self.learning_rate * step
            self._trees.append(tree)
        return self

    def predict(self, features):
        if not self._trees:
            raise RuntimeError("model is not fitted")
        x = np.asarray(features, dtype=np.float64)
        out = np.full(len(x), self._base)
        for tree in self._trees:
            out += self.learning_rate * tree.predict(x)
        return out
