"""Span exporters, latency attribution and SLO burn tracking.

Three consumers of the span stream:

* ``write_spans_jsonl`` — one JSON object per span, the archival format
  CI uploads from the chaos benches.
* ``write_chrome_trace`` — Chrome trace-event JSON; open it at
  https://ui.perfetto.dev (or ``chrome://tracing``) to see every request
  as a row of stage slices, hedge races included.
* ``latency_attribution`` — the report ROADMAP open item 2 needs: for
  each request class, the share of end-to-end p50/p95/p99 spent in
  queue / featurize / infer / cache / deliver, plus a coverage figure
  (how much of the measured end-to-end latency the stages account for).

Plus ``slo_burn``/``slo_report``: error-budget burn against the
availability and latency floors the chaos benches assert.
"""

from __future__ import annotations

import json
from collections import defaultdict

__all__ = [
    "spans_to_dicts",
    "write_spans_jsonl",
    "chrome_trace_events",
    "write_chrome_trace",
    "latency_attribution",
    "format_attribution",
    "slo_burn",
    "slo_report",
]


def spans_to_dicts(spans):
    return [s.as_dict() for s in spans]


def write_spans_jsonl(spans, path):
    """One JSON object per line; returns the number of spans written."""
    with open(path, "w", encoding="utf-8") as fh:
        for span in spans:
            fh.write(json.dumps(span.as_dict(), sort_keys=True) + "\n")
    return len(spans)


def _percentile(values, p):
    """Nearest-rank percentile of a non-empty sorted list."""
    rank = max(1, int(p / 100.0 * len(values) + 0.5))
    return values[min(rank, len(values)) - 1]


def chrome_trace_events(spans):
    """Chrome trace-event dicts (``ph: "X"`` complete events).

    Processes (``proc``: server, worker-N) become trace pids; each trace
    id becomes a tid so one request reads as one row.  Timestamps are
    microseconds relative to the earliest span, so the timeline starts
    at zero regardless of the ``perf_counter`` epoch.
    """
    if not spans:
        return []
    origin = min(s.start for s in spans)
    pids = {}
    tids = {}
    events = []
    for span in spans:
        pid = pids.setdefault(span.proc, len(pids) + 1)
        tid = tids.setdefault(span.trace_id, len(tids) + 1)
        args = {"trace_id": span.trace_id, "span_id": span.span_id}
        if span.annotations:
            args["annotations"] = list(span.annotations)
        events.append({
            "name": span.name,
            "ph": "X",
            "ts": (span.start - origin) * 1e6,
            "dur": max(0.0, (span.end - span.start) * 1e6),
            "pid": pid,
            "tid": tid,
            "args": args,
        })
    for proc, pid in pids.items():
        events.append({"name": "process_name", "ph": "M", "pid": pid,
                       "tid": 0, "args": {"name": proc}})
    return events


def write_chrome_trace(spans, path):
    """Perfetto-loadable trace file; returns the number of events."""
    events = chrome_trace_events(spans)
    payload = {"traceEvents": events, "displayTimeUnit": "ms"}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh)
    return len(events)


def _group_traces(spans):
    """{trace_id: (root_span, [stage spans])} for finalized traces."""
    roots = {}
    stages = defaultdict(list)
    for span in spans:
        if span.parent_id is None:
            roots[span.trace_id] = span
        else:
            stages[span.trace_id].append(span)
    return {tid: (root, stages.get(tid, [])) for tid, root in roots.items()}


def _class_of(root):
    """Request class from the root span's deterministic annotations."""
    db = prio = None
    for tag in root.annotations:
        if tag.startswith("db."):
            db = tag[3:]
        elif tag.startswith("prio."):
            prio = tag[5:]
    if db and prio:
        return f"{db}/{prio}"
    return db or prio or "all"


def _union_ms(intervals):
    """Total covered time (ms) of a set of ``(start, end)`` intervals."""
    covered = 0.0
    last_end = None
    for start, end in sorted(intervals):
        if last_end is None or start >= last_end:
            covered += end - start
            last_end = end
        elif end > last_end:
            covered += end - last_end
            last_end = end
    return covered * 1000.0


def latency_attribution(spans, percentiles=(50, 95, 99)):
    """Per-class, per-stage latency attribution from finalized spans.

    For each request class (``db/priority`` from the root annotations)
    and each stage name, reports the p50/p95/p99 of per-request stage
    time and the stage's share of total end-to-end time.  Stage time is
    the **union** of that stage's intervals within a request, and a
    request's attributed time is the union across *all* its stages — so
    a hedged request racing on two workers (duplicate queue/recv spans)
    or a retried one is never attributed more than its own wall time.
    ``coverage`` is sum(attributed time) / sum(end-to-end time): the
    fraction of measured latency the stages account for — the acceptance
    gate asks for >= 0.95.
    """
    per_class = defaultdict(lambda: {"totals": [], "attributed": [],
                                     "stages": defaultdict(list)})
    for trace_id, (root, stage_spans) in _group_traces(spans).items():
        cls = _class_of(root)
        bucket = per_class[cls]
        bucket["totals"].append(root.duration_ms)
        per_stage = defaultdict(list)
        for span in stage_spans:
            per_stage[span.name].append((span.start, span.end))
        for name, intervals in per_stage.items():
            bucket["stages"][name].append(_union_ms(intervals))
        bucket["attributed"].append(_union_ms(
            [iv for ivs in per_stage.values() for iv in ivs]))

    def summarize(bucket):
        totals = sorted(bucket["totals"])
        total_sum = sum(totals)
        out = {
            "requests": len(totals),
            "end_to_end_ms": {f"p{p}": _percentile(totals, p)
                              for p in percentiles} if totals else {},
            "stages": {},
        }
        for name, durs in sorted(bucket["stages"].items()):
            durs_sorted = sorted(durs)
            out["stages"][name] = {
                f"p{p}": _percentile(durs_sorted, p) for p in percentiles
            }
            out["stages"][name]["share"] = (
                sum(durs_sorted) / total_sum) if total_sum else 0.0
        attributed = sum(bucket["attributed"])
        out["coverage"] = (attributed / total_sum) if total_sum else 1.0
        return out

    report = {cls: summarize(bucket)
              for cls, bucket in sorted(per_class.items())}
    merged = {"totals": [], "attributed": [], "stages": defaultdict(list)}
    for bucket in per_class.values():
        merged["totals"].extend(bucket["totals"])
        merged["attributed"].extend(bucket["attributed"])
        for name, durs in bucket["stages"].items():
            merged["stages"][name].extend(durs)
    return {"overall": summarize(merged), "by_class": report}


def format_attribution(attribution, stages=None):
    """Plain-text table of an attribution report (for examples/benches)."""
    overall = attribution["overall"]
    if stages is None:
        stages = sorted(overall["stages"])
    pkeys = sorted(overall["end_to_end_ms"])
    lines = [f"{'stage':>12} {'share':>7} "
             + " ".join(f"{k + ' (ms)':>12}" for k in pkeys)]
    for name in stages:
        stats = overall["stages"].get(name)
        if stats is None:
            continue
        lines.append(f"{name:>12} {stats['share'] * 100:6.1f}% "
                     + " ".join(f"{stats[k]:12.3f}" for k in pkeys))
    e2e = overall["end_to_end_ms"]
    lines.append(f"{'end-to-end':>12} {'100.0%':>7} "
                 + " ".join(f"{e2e[k]:12.3f}" for k in pkeys))
    lines.append(f"coverage: {overall['coverage'] * 100:.1f}% of e2e latency "
                 f"attributed across {overall['requests']} requests")
    return "\n".join(lines)


def slo_burn(availability, floor):
    """Error-budget burn rate: 1.0 = exactly at the floor, >1 = violating."""
    budget = 1.0 - floor
    err = 1.0 - availability
    if budget <= 0.0:
        return 0.0 if err <= 0.0 else float("inf")
    return max(0.0, err / budget)


def slo_report(*, delivered, submitted, availability_floor=0.99,
               latency_p95_ms=None, latency_p95_floor_ms=None):
    """SLO summary against the floors the chaos benches assert."""
    availability = (delivered / submitted) if submitted else 1.0
    report = {
        "submitted": submitted,
        "delivered": delivered,
        "availability": availability,
        "availability_floor": availability_floor,
        "availability_burn": slo_burn(availability, availability_floor),
        "availability_met": availability >= availability_floor,
    }
    if latency_p95_floor_ms is not None and latency_p95_ms is not None:
        report["latency_p95_ms"] = latency_p95_ms
        report["latency_p95_floor_ms"] = latency_p95_floor_ms
        report["latency_met"] = latency_p95_ms <= latency_p95_floor_ms
    report["met"] = report["availability_met"] and report.get("latency_met",
                                                              True)
    return report
