"""Per-request spans with deterministic ids.

A request that opts into tracing carries a :class:`TraceContext` on its
handle (``request.trace``); every serving stage records an interval into
it and the context is finalized into :class:`Span` records when the
request completes.  Three properties drive the design:

**Deterministic structure.**  The trace id is derived from
``(plan fingerprint, request seq)`` and span ids from
``(trace id, stage name, occurrence index)``, so a replayed run (same
corpus, same seeds, same fault schedule) produces the *same ids,
parentage and annotations* — only the timestamps differ.  That makes
span structure assertable in tests the same way the chaos benches assert
value bit-identity.

**Passive.**  Spans record wall-clock intervals (``time.perf_counter``,
which is system-wide on this platform, so worker and router timestamps
share one clock) and string annotations.  They never touch request
values or RNG streams, so every bit-identity contract holds with tracing
enabled.

**Zero cost when off.**  An untraced request has ``trace = None`` and
every instrumentation site is a single ``is not None`` check.  Sampling
(``sample_every=N`` traces every N-th request, decided from the
deterministic request seq) bounds the cost when on.

Stage vocabulary used by the serving path::

    queue       submit -> batch dispatch (batcher pop / pipe send)
    pipe.send   router -> worker pipe write (fleet only)
    worker.recv pipe send -> worker picked the message up (fleet only)
    coalesce    worker recv -> batch assembled (fleet only)
    featurize   plan-graph featurization (per attempt)
    infer       model forward pass (per attempt)
    cache       submit-time or late result-cache probe that hit
    deliver     last recorded stage -> completion (result hand-off)

plus annotations ``retry``, ``bisect``, ``degraded``, ``cache.hit``,
``hedge.sent``, ``hedge.won``, ``shed``, ``brownout``, ``requeued``,
``deadline``.
"""

from __future__ import annotations

import threading
from collections import deque
from hashlib import blake2b

__all__ = ["Span", "TraceContext", "Tracer", "trace_id_for", "span_structure"]


def trace_id_for(digest, seq):
    """Deterministic 16-hex-digit trace id from (plan fingerprint, seq)."""
    h = blake2b(f"{digest}:{seq}".encode("utf-8"), digest_size=8)
    return h.hexdigest()


def _span_id(trace_id, name, occurrence):
    h = blake2b(f"{trace_id}/{name}/{occurrence}".encode("utf-8"),
                digest_size=6)
    return h.hexdigest()


class Span:
    """One timed interval of one request.  Plain data, JSON-safe."""

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "start", "end",
                 "proc", "annotations")

    def __init__(self, trace_id, span_id, parent_id, name, start, end,
                 proc="server", annotations=()):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.end = end
        self.proc = proc
        self.annotations = tuple(annotations)

    @property
    def duration_ms(self):
        return (self.end - self.start) * 1000.0

    def as_dict(self):
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "duration_ms": self.duration_ms,
            "proc": self.proc,
            "annotations": list(self.annotations),
        }


class TraceContext:
    """Mutable per-request span accumulator.

    Stage recording is append-only and effectively single-writer at any
    moment (the request moves between batcher/worker/router, never being
    processed by two stages at once), matching the request lifecycle the
    fleet already relies on.
    """

    __slots__ = ("trace_id", "seq", "db_name", "priority", "submitted_at",
                 "_stages", "_annotations", "_tracer", "finalized")

    def __init__(self, trace_id, seq, tracer=None, db_name=None,
                 priority=None, submitted_at=None):
        self.trace_id = trace_id
        self.seq = seq
        self.db_name = db_name
        self.priority = priority
        self.submitted_at = submitted_at
        self._stages = []          # [(name, start, end, proc), ...]
        self._annotations = []
        self._tracer = tracer
        self.finalized = False

    # -- recording -------------------------------------------------------
    def add_stage(self, name, start, end, proc="server"):
        self._stages.append((name, float(start), float(end), proc))

    def annotate(self, tag):
        self._annotations.append(tag)

    # -- fleet wire ------------------------------------------------------
    def export_remote(self):
        """Worker side: plain tuples to ride the result message."""
        return (list(self._stages), list(self._annotations))

    def merge_remote(self, payload, proc):
        """Router side: fold a worker's exported stages/annotations in."""
        stages, annotations = payload
        for name, start, end, _ in stages:
            self.add_stage(name, start, end, proc)
        self._annotations.extend(annotations)

    # -- completion ------------------------------------------------------
    def finalize(self, completed_at, status=None):
        """Build the span tree and hand it to the tracer (idempotent)."""
        if self.finalized:
            return []
        self.finalized = True
        submitted = self.submitted_at
        if submitted is None:
            submitted = min((s[1] for s in self._stages),
                            default=completed_at)
        annotations = []
        if self.db_name is not None:
            annotations.append(f"db.{self.db_name}")
        if self.priority is not None:
            annotations.append(f"prio.{self.priority}")
        annotations.extend(self._annotations)
        if status is not None:
            annotations.append(f"status.{status}")
        root_id = _span_id(self.trace_id, "request", 0)
        spans = [Span(self.trace_id, root_id, None, "request",
                      submitted, completed_at, proc="server",
                      annotations=annotations)]
        occurrences = {}
        last_end = submitted
        for name, start, end, proc in self._stages:
            occ = occurrences.get(name, 0)
            occurrences[name] = occ + 1
            spans.append(Span(self.trace_id,
                              _span_id(self.trace_id, name, occ),
                              root_id, name, start, end, proc=proc))
            if end > last_end:
                last_end = end
        # Tail interval between the last recorded stage and completion:
        # result hand-off / event wakeup.  Recording it keeps the stage
        # spans tiling the whole request, so latency attribution accounts
        # for ~100% of end-to-end latency instead of leaking it.
        if completed_at > last_end:
            spans.append(Span(self.trace_id,
                              _span_id(self.trace_id, "deliver", 0),
                              root_id, "deliver", last_end, completed_at,
                              proc="server"))
        if self._tracer is not None:
            self._tracer.record(spans)
        return spans


class Tracer:
    """Span sink with deterministic sampling and a bounded buffer."""

    def __init__(self, enabled=True, sample_every=1, max_spans=200_000):
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.enabled = enabled
        self.sample_every = sample_every
        self._spans = deque(maxlen=max_spans)
        self._lock = threading.Lock()

    def context_for(self, digest, seq, db_name=None, priority=None,
                    submitted_at=None):
        """A TraceContext for this request, or None if not sampled."""
        if not self.enabled or (seq % self.sample_every) != 0:
            return None
        return TraceContext(trace_id_for(digest, seq), seq, tracer=self,
                            db_name=db_name, priority=priority,
                            submitted_at=submitted_at)

    def record(self, spans):
        with self._lock:
            self._spans.extend(spans)

    def spans(self):
        with self._lock:
            return list(self._spans)

    def drain(self):
        with self._lock:
            out = list(self._spans)
            self._spans.clear()
            return out

    def __len__(self):
        with self._lock:
            return len(self._spans)


def span_structure(spans):
    """Timestamp-free skeleton of a span set, for replay assertions.

    Returns a sorted list of ``(trace_id, span_id, parent_id, name,
    annotations)`` tuples — everything about the spans except the
    timings.  Two runs of the same schedule must produce equal
    structures.
    """
    return sorted((s.trace_id, s.span_id, s.parent_id or "", s.name,
                   tuple(s.annotations)) for s in spans)
