"""Canonical catalog of serving-plane counters and metrics.

One source of truth for every ``serve.* / fleet.* / controller.* /
fault.* / store.*`` counter the serving stack fires.  The README's
counter table is generated from this module (``python -m
repro.obs.catalog --markdown``) and a tier-1 test cross-checks the
catalog against the names *actually fired* in the source tree — so docs,
catalog and code cannot drift apart silently.

Patterns use ``<placeholder>`` for a dynamic final segment
(``fault.injected.<point>``); documentation may also use brace
alternation (``fleet.worker.{spawn,restart}``), which
:func:`expand_braces` normalises before matching.
"""

from __future__ import annotations

import re

__all__ = ["COUNTERS", "HISTOGRAMS", "GAUGES", "counter_patterns",
           "expand_braces", "pattern_matches", "markdown_table"]

#: (pattern, description) for every serving-plane counter.
COUNTERS = [
    # -- single-process serving core / server ---------------------------
    ("serve.batch.count", "batches the serving core processed"),
    ("serve.batch.requests", "requests across all processed batches"),
    ("serve.cache.hit", "result-cache hits (submit-time or late probe)"),
    ("serve.cache.miss", "requests that missed the result cache"),
    ("serve.shed.count", "requests shed by admission control"),
    ("serve.shed.priority.<priority>",
     "sheds by priority class (high/normal/low)"),
    ("serve.swap.count", "model hot-swaps picked up by the core"),
    ("serve.retry.count", "per-request inference retries after faults"),
    ("serve.registry.publish", "checkpoints published to the registry"),
    ("serve.registry.promote", "registry promotions to serving"),
    ("serve.registry.rollback", "registry rollbacks to the prior version"),
    ("serve.registry.verify", "checkpoint digest verifications"),
    ("serve.registry.quarantine", "corrupt checkpoints quarantined"),
    ("serve.fault.model_path", "model-path faults absorbed by retries"),
    ("serve.fault.bisect", "batch bisections isolating a poisoned plan"),
    ("serve.fault.batcher_crash", "batcher thread crashes (supervised)"),
    ("serve.fault.requeued", "in-flight requests re-enqueued after a crash"),
    ("serve.fault.deadline", "requests expired at their deadline"),
    ("serve.fault.hydrate", "checkpoint hydration failures"),
    ("serve.degraded.count", "requests answered by the degraded fallback"),
    ("serve.degraded.open", "circuit breakers opened"),
    ("serve.degraded.half_open", "breaker half-open probe attempts"),
    ("serve.degraded.close", "breakers closed after a successful probe"),
    # -- fleet router / workers -----------------------------------------
    ("fleet.worker.spawn", "worker processes spawned"),
    ("fleet.worker.restart", "worker processes restarted after exit/kill"),
    ("fleet.route.hit", "requests routed to their sticky shard"),
    ("fleet.route.rebalance", "routing decisions that moved a shard"),
    ("fleet.queue.depth", "outstanding-request high-water increments"),
    ("fleet.hang.detected", "workers declared hung by missed heartbeats"),
    ("fleet.hang.killed", "hung workers killed for restart"),
    ("fleet.hedge.sent", "hedged duplicate requests sent"),
    ("fleet.hedge.won", "hedges that beat the primary"),
    ("fleet.hedge.wasted", "hedges that lost the race"),
    ("fleet.brownout.count", "LOW-priority brownout fallbacks under overload"),
    ("fleet.stats.unresponsive", "stats polls a worker failed to answer"),
    # -- continuous-learning controller ---------------------------------
    ("controller.tick.count", "controller ticks executed"),
    ("controller.observe.count", "observations ingested from the tap"),
    ("controller.observe.executed", "observations joined with executed runtimes"),
    ("controller.observe.dropped", "observations dropped by the bounded tap"),
    ("controller.drift.detected", "drift triggers tripped"),
    ("controller.retrain.count", "retrain jobs launched"),
    ("controller.candidate.published", "candidate versions published"),
    ("controller.candidate.rejected", "candidates rejected by shadow eval"),
    ("controller.shadow.samples", "shadow-evaluated samples"),
    ("controller.promote.count", "guarded promotions"),
    ("controller.rollback.count", "probation auto-rollbacks"),
    ("controller.probation.passed", "probation windows passed"),
    ("controller.crash.count", "controller ticks that crashed (contained)"),
    # -- fault injection / checkpoint store -----------------------------
    ("fault.injected.<point>", "faults fired at an injection point"),
    ("store.hit.<kind>", "bench-store cache hits by artifact kind"),
    ("store.miss.<kind>", "bench-store cache misses by artifact kind"),
    ("store.corrupt.<kind>", "store artifacts failing digest verification"),
    ("store.quarantine.<kind>", "corrupt store artifacts quarantined"),
]

#: (name, description) for log-bucket latency histograms (fixed power-of-2
#: boundaries, exactly mergeable across workers at the router).
HISTOGRAMS = [
    ("serve.latency_ms", "end-to-end latency of delivered requests"),
    ("serve.batch_ms", "serving-core batch processing time"),
    ("parallel.map_ms", "parallel_map fan-out wall time"),
]

#: (name, description) for gauges (last-write-wins).
GAUGES = []

_PLACEHOLDER = re.compile(r"<[a-z_]+>")


def counter_patterns():
    return [pattern for pattern, _ in COUNTERS]


def expand_braces(name):
    """Expand one level of ``{a,b}`` alternation into concrete names."""
    m = re.search(r"\{([^{}]+)\}", name)
    if not m:
        return [name]
    head, tail = name[:m.start()], name[m.end():]
    out = []
    for alt in m.group(1).split(","):
        out.extend(expand_braces(head + alt.strip() + tail))
    return out


def pattern_matches(pattern, name):
    """True if ``name`` matches ``pattern`` (``<x>`` = one dynamic tail)."""
    if "<" not in pattern:
        return pattern == name
    # re.escape leaves "<"/">" alone, so placeholders survive escaping.
    regex = _PLACEHOLDER.sub(r"[A-Za-z0-9_.\-]+", re.escape(pattern))
    return re.fullmatch(regex, name) is not None


def find_pattern(name):
    """The catalog pattern covering counter ``name``, or None."""
    for pattern, _ in COUNTERS:
        if pattern_matches(pattern, name):
            return pattern
    return None


def markdown_table():
    """The generated counter/metric catalog section for the README."""
    lines = ["| counter | meaning |", "| --- | --- |"]
    for pattern, desc in COUNTERS:
        lines.append(f"| `{pattern}` | {desc} |")
    lines.append("")
    lines.append("| histogram (log-bucket, exactly mergeable) | meaning |")
    lines.append("| --- | --- |")
    for name, desc in HISTOGRAMS:
        lines.append(f"| `{name}` | {desc} |")
    return "\n".join(lines)


if __name__ == "__main__":
    import sys
    if "--markdown" in sys.argv:
        print(markdown_table())
    else:
        for pattern, desc in COUNTERS:
            print(f"{pattern:40s} {desc}")
        for name, desc in HISTOGRAMS:
            print(f"{name:40s} [histogram] {desc}")
