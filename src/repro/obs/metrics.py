"""Typed metrics registry: counters, gauges, exactly-mergeable histograms.

The registry is the single process-wide sink for serving metrics.  It is
thread-safe under the free-threaded assumptions the fleet already makes
(batcher thread + client threads + liveness thread all incrementing
concurrently), and it is **mergeable**: a worker process snapshots its
registry, ships the plain-dict payload over the control pipe, and the
router folds it into its own view with :meth:`MetricsRegistry.merge` —
counters add, gauges take the latest, and histograms add *element-wise*
because every histogram of a given name shares the same fixed log-bucket
boundaries.  Exact merge (not approximate) is the point: the fleet-wide
p95 computed at the router is the same number a single process observing
all samples would have computed, to bucket resolution.

Nothing here imports from the rest of :mod:`repro`; ``perfstats`` imports
this module, not the other way round.
"""

from __future__ import annotations

import threading
from bisect import bisect_right

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "DEFAULT_LATENCY_BOUNDARIES_MS",
    "snapshot_delta",
]

# Fixed log-bucket ladder for latency histograms, in milliseconds: powers
# of two from ~1 µs to ~65 s.  Fixed and shared so that any two histograms
# with the same name merge exactly (element-wise count addition).
DEFAULT_LATENCY_BOUNDARIES_MS = tuple(2.0 ** e for e in range(-10, 17))


class Counter:
    """Monotonic counter.  ``inc`` is atomic under the registry lock."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name, lock):
        self.name = name
        self.value = 0
        self._lock = lock

    def inc(self, n=1):
        with self._lock:
            self.value += n


class Gauge:
    """Last-write-wins instantaneous value (queue depth, breaker state)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name, lock):
        self.name = name
        self.value = 0.0
        self._lock = lock

    def set(self, value):
        with self._lock:
            self.value = float(value)


class Histogram:
    """Log-bucket histogram with *fixed* boundaries → exact merges.

    ``counts`` has ``len(boundaries) + 1`` slots; sample ``v`` lands in the
    first bucket whose upper boundary is ``> v`` (the last slot is the
    overflow bucket).  Two histograms with equal boundaries merge by adding
    counts element-wise, which is exact: no sample is re-binned.
    """

    __slots__ = ("name", "boundaries", "counts", "total", "sum", "_lock")

    def __init__(self, name, boundaries=DEFAULT_LATENCY_BOUNDARIES_MS,
                 lock=None):
        self.name = name
        self.boundaries = tuple(float(b) for b in boundaries)
        if any(b <= a for a, b in zip(self.boundaries, self.boundaries[1:])):
            raise ValueError("histogram boundaries must be strictly increasing")
        self.counts = [0] * (len(self.boundaries) + 1)
        self.total = 0
        self.sum = 0.0
        self._lock = lock if lock is not None else threading.Lock()

    def observe(self, value):
        idx = bisect_right(self.boundaries, value)
        with self._lock:
            self.counts[idx] += 1
            self.total += 1
            self.sum += value

    def merge_counts(self, boundaries, counts, total, sum_):
        if tuple(boundaries) != self.boundaries:
            raise ValueError(
                f"histogram {self.name!r}: cannot merge mismatched boundaries")
        with self._lock:
            for i, c in enumerate(counts):
                self.counts[i] += c
            self.total += total
            self.sum += sum_

    def percentile(self, p):
        """Upper boundary of the bucket holding the ``p``-th percentile.

        Returns 0.0 for an empty histogram.  The answer is exact to bucket
        resolution, and identical whether samples were observed in one
        process or merged from many.
        """
        with self._lock:
            total = self.total
            counts = list(self.counts)
        if total == 0:
            return 0.0
        rank = max(1, int(p / 100.0 * total + 0.5))
        seen = 0
        for i, c in enumerate(counts):
            seen += c
            if seen >= rank:
                if i < len(self.boundaries):
                    return self.boundaries[i]
                return self.boundaries[-1] * 2.0  # overflow bucket
        return self.boundaries[-1] * 2.0

    def as_dict(self):
        with self._lock:
            return {
                "boundaries": list(self.boundaries),
                "counts": list(self.counts),
                "total": self.total,
                "sum": self.sum,
            }


class MetricsRegistry:
    """Thread-safe named registry of counters, gauges and histograms."""

    def __init__(self):
        self._lock = threading.RLock()
        self._counters = {}
        self._gauges = {}
        self._histograms = {}

    # -- construction / lookup ------------------------------------------
    def counter(self, name):
        with self._lock:
            c = self._counters.get(name)
            if c is None:
                c = self._counters[name] = Counter(name, self._lock)
            return c

    def gauge(self, name):
        with self._lock:
            g = self._gauges.get(name)
            if g is None:
                g = self._gauges[name] = Gauge(name, self._lock)
            return g

    def histogram(self, name, boundaries=DEFAULT_LATENCY_BOUNDARIES_MS):
        with self._lock:
            h = self._histograms.get(name)
            if h is None:
                h = self._histograms[name] = Histogram(
                    name, boundaries, lock=threading.Lock())
            return h

    # -- hot-path conveniences ------------------------------------------
    def increment(self, name, n=1):
        self.counter(name).inc(n)

    def observe(self, name, value):
        self.histogram(name).observe(value)

    def set_gauge(self, name, value):
        self.gauge(name).set(value)

    # -- snapshot / merge -----------------------------------------------
    def snapshot(self):
        """Plain-dict, pickle/JSON-safe copy of everything (for the wire)."""
        with self._lock:
            counters = {n: c.value for n, c in self._counters.items()}
            gauges = {n: g.value for n, g in self._gauges.items()}
            hist_items = list(self._histograms.items())
        histograms = {n: h.as_dict() for n, h in hist_items}
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}

    def merge(self, snapshot):
        """Fold a snapshot from another process into this registry.

        Counters add, gauges last-write-win, histograms merge exactly
        (element-wise) — boundaries must match, by construction they do
        because every histogram of a given name uses the same fixed ladder.
        """
        for name, value in snapshot.get("counters", {}).items():
            if value:
                self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, payload in snapshot.get("histograms", {}).items():
            h = self.histogram(name, payload["boundaries"])
            h.merge_counts(payload["boundaries"], payload["counts"],
                           payload["total"], payload["sum"])

    def counter_values(self, names=None):
        with self._lock:
            if names is None:
                return {n: c.value for n, c in self._counters.items()}
            return {n: (self._counters[n].value if n in self._counters else 0)
                    for n in names}

    def reset(self):
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


def snapshot_delta(new, old):
    """``new - old`` for two snapshots of the *same* registry.

    This is how workers ship metric *deltas* over the control pipe: each
    stats answer carries only what changed since the last one, so the
    router can merge every delta it receives without ever double-counting
    a cumulative value.  ``old=None`` means "everything is new".
    """
    if old is None:
        return new
    counters = {}
    for name, value in new.get("counters", {}).items():
        diff = value - old.get("counters", {}).get(name, 0)
        if diff:
            counters[name] = diff
    histograms = {}
    for name, payload in new.get("histograms", {}).items():
        prev = old.get("histograms", {}).get(name)
        if prev is None:
            histograms[name] = payload
            continue
        counts = [c - p for c, p in zip(payload["counts"], prev["counts"])]
        total = payload["total"] - prev["total"]
        if total:
            histograms[name] = {
                "boundaries": payload["boundaries"],
                "counts": counts,
                "total": total,
                "sum": payload["sum"] - prev["sum"],
            }
    return {"counters": counters, "gauges": dict(new.get("gauges", {})),
            "histograms": histograms}


#: Process-wide default registry.  ``perfstats`` and the serving stack all
#: write here; worker processes snapshot it into their stats payloads.
REGISTRY = MetricsRegistry()
