"""Deterministic observability plane for the serving stack.

Three pieces, each usable on its own:

``obs.metrics``
    A typed, thread-safe registry of counters, gauges and **log-bucket
    histograms with fixed boundaries**.  Fixed boundaries mean per-worker
    histograms merge *exactly* at the router (element-wise count addition)
    instead of approximately.  :mod:`repro.perfstats` delegates to this
    registry, so every legacy ``perfstats.increment`` call is already a
    typed counter here.

``obs.trace``
    Per-request spans (submit → queue wait → pipe send → worker recv →
    featurize → infer → deliver) with trace ids derived from
    ``(plan fingerprint, request seq)``, so a replayed chaos schedule
    produces the *same span structure* run over run.  Span context rides
    the existing fleet wire tuples; the router assembles fleet-wide traces
    hang-safely because span data only travels on messages that already
    flow (results, stats payloads).

``obs.export``
    JSONL span export, Chrome trace-event (Perfetto-loadable) timelines,
    per-stage latency attribution (queue/featurize/infer/deliver share of
    p50/p95/p99) and SLO burn tracking against the availability/latency
    floors the chaos benches assert.

Tracing is strictly passive: spans record timings and annotations, never
values, so every bit-identity contract (served value == direct
``predict_runtimes``) holds with tracing enabled.  With tracing disabled
the request handles carry ``trace = None`` and the serving path does no
observability work at all.
"""

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
    DEFAULT_LATENCY_BOUNDARIES_MS,
)
from .trace import (Span, TraceContext, Tracer, span_structure,
                    trace_id_for)
from .export import (
    chrome_trace_events,
    latency_attribution,
    slo_report,
    spans_to_dicts,
    write_chrome_trace,
    write_spans_jsonl,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "DEFAULT_LATENCY_BOUNDARIES_MS",
    "Span",
    "TraceContext",
    "Tracer",
    "span_structure",
    "trace_id_for",
    "chrome_trace_events",
    "latency_attribution",
    "slo_report",
    "spans_to_dicts",
    "write_chrome_trace",
    "write_spans_jsonl",
]
