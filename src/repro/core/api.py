"""Public API: :class:`ZeroShotCostModel`.

The model is trained once on traces from many databases and then predicts
runtimes on unseen databases out of the box.  Cardinality inputs are
pluggable (``"exact"`` / ``"deepdb"`` / ``"optimizer"``), mirroring the
variants evaluated in the paper; few-shot fine-tuning continues training on
a handful of queries from the target database.
"""

from __future__ import annotations

import copy
import io
from hashlib import blake2b

import numpy as np

from ..cardest import (CARD_SOURCES, DataDrivenEstimator,
                       annotate_cardinalities)
from ..featurization import (FeatureScalers, FeaturizationCache, TargetScaler,
                             build_query_graphs)
from ..nn import load_state, q_error_metrics, save_state
from .model import ZeroShotModel
from .training import TrainingConfig, predict_runtimes, train_model

__all__ = ["ZeroShotCostModel", "featurize_records", "EstimatorCache"]


class EstimatorCache:
    """Lazily built, shared :class:`DataDrivenEstimator` per database.

    Entries are validated against a cheap database fingerprint (name +
    per-table row counts): a database that was rebuilt or grown under the
    same name gets a fresh estimator instead of silently reusing the stale
    model trained on the old data.
    """

    def __init__(self, sample_size=1024, seed=0, store=None):
        self.sample_size = sample_size
        self.seed = seed
        self.store = store
        self._cache = {}

    def get(self, db):
        fingerprint = db.fingerprint()
        entry = self._cache.get(db.name)
        if entry is None or entry[0] != fingerprint:
            entry = (fingerprint, DataDrivenEstimator(
                db, sample_size=self.sample_size, seed=self.seed,
                store=self.store))
            self._cache[db.name] = entry
        return entry[1]

    def invalidate(self, db_name):
        self._cache.pop(db_name, None)


def featurize_records(records, dbs, cards="exact", estimator_cache=None,
                      storage_formats=None, feat_cache=None):
    """Build query graphs for trace records.

    ``dbs`` maps database names to :class:`~repro.storage.Database` objects;
    ``cards`` chooses the cardinality source for the ``cardout`` features.

    Records are grouped per database and encoded through the vectorized
    batch builder; for the estimator-free sources the cardinality lookup is
    fused into the traversal (no per-plan annotation pass).  With a
    :class:`~repro.featurization.FeaturizationCache` as ``feat_cache``,
    plans whose content fingerprint was featurized before — equal but
    possibly distinct objects — are served from the cache and skip
    annotation and construction entirely.
    """
    if cards not in CARD_SOURCES:
        raise ValueError(f"unknown cardinality source {cards!r}")
    estimator_cache = estimator_cache or EstimatorCache()
    records = list(records)
    graphs = [None] * len(records)
    keys = [None] * len(records)
    pending = []
    duplicates = []
    if feat_cache is not None:
        first_of_key = {}
        db_fingerprints = {}
        cache_key, cache_get = feat_cache.key, feat_cache.get
        for position, record in enumerate(records):
            db_name = record.db_name
            db_fingerprint = db_fingerprints.get(db_name)
            if db_fingerprint is None:
                db_fingerprint = dbs[db_name].fingerprint()
                db_fingerprints[db_name] = db_fingerprint
            key = cache_key(None, record.plan, cards, storage_formats,
                            db_fingerprint=db_fingerprint)
            keys[position] = key
            cached = cache_get(key)
            if cached is not None:
                graphs[position] = cached
            elif key in first_of_key:
                duplicates.append(position)  # same content earlier this batch
            else:
                first_of_key[key] = position
                pending.append(position)
    else:
        pending = range(len(records))

    by_db = {}
    for position in pending:
        by_db.setdefault(records[position].db_name, []).append(position)
    for db_name, positions in by_db.items():
        db = dbs[db_name]
        plans = [records[position].plan for position in positions]
        if cards == "deepdb":
            estimator = estimator_cache.get(db)
            card_maps = [annotate_cardinalities(db, plan, cards,
                                                estimator=estimator)
                         for plan in plans]
        else:
            card_maps = cards  # fused into the traversal ("exact"/"optimizer")
        built = build_query_graphs(db, plans, card_maps,
                                   storage_formats=storage_formats)
        for position, graph in zip(positions, built):
            graphs[position] = graph
            if feat_cache is not None:
                feat_cache.put(keys[position], graph)
    # Duplicates share the graph built for their first occurrence (resolved
    # from this call's results, not the cache — the first occurrence may
    # already have been evicted by later puts).
    for position in duplicates:
        graphs[position] = graphs[first_of_key[keys[position]]]
    return graphs


class ZeroShotCostModel:
    """A trained zero-shot cost model with its scalers and configuration."""

    def __init__(self, model, feature_scalers, target_scaler, config):
        self.model = model
        self.feature_scalers = feature_scalers
        self.target_scaler = target_scaler
        self.config = config

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    @classmethod
    def train(cls, traces, dbs, cards="exact", config=None,
              estimator_cache=None, graphs=None, runtimes=None):
        """Train on a list of traces (typically from many databases).

        Pre-featurized ``graphs``/``runtimes`` can be passed to skip
        featurization (the benchmark harness caches them).
        """
        config = config or TrainingConfig()
        if graphs is None:
            records = [r for trace in traces for r in trace]
            graphs = featurize_records(records, dbs, cards=cards,
                                       estimator_cache=estimator_cache)
            runtimes = np.array([r.runtime_ms for r in records])
        model = ZeroShotModel(hidden_dim=config.hidden_dim,
                              dropout=config.dropout, seed=config.seed)
        scalers, target_scaler, history = train_model(
            model, graphs, runtimes, config)
        trained = cls(model, scalers, target_scaler, config)
        trained.history = history
        return trained

    def fine_tune(self, records, dbs, cards="exact", epochs=15,
                  learning_rate=4e-4, estimator_cache=None, graphs=None,
                  runtimes=None, feat_cache=None):
        """Few-shot mode: continue training on queries of the target database.

        Returns a *new* model; the original is unchanged.  A ``feat_cache``
        (fingerprint-keyed) lets a long-running caller — the continuous-
        learning controller fine-tunes on plans it will also shadow-
        evaluate — reuse featurized graphs across calls.
        """
        if graphs is None:
            graphs = featurize_records(records, dbs, cards=cards,
                                       estimator_cache=estimator_cache,
                                       feat_cache=feat_cache)
            runtimes = np.array([r.runtime_ms for r in records])
        clone = copy.deepcopy(self)
        few_config = self.config.few_shot(epochs=epochs,
                                          learning_rate=learning_rate)
        train_model(clone.model, graphs, runtimes, few_config,
                    feature_scalers=clone.feature_scalers,
                    target_scaler=clone.target_scaler)
        clone.config = few_config
        return clone

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def predict_records(self, records, dbs, cards="deepdb",
                        estimator_cache=None, graphs=None, batch_cache=None,
                        feat_cache=None):
        """Predicted runtimes (ms) for trace records on any database.

        Inference runs the graph-free numpy fast path; repeated calls on the
        same ``graphs`` objects reuse cached batches (``batch_cache``
        defaults to a process-wide cache).  Freshly featurized graphs exist
        only for this call, so batch caching is skipped for them — unless a
        ``feat_cache`` (fingerprint-keyed) is supplied, in which case equal
        plans resolve to stable graph objects and batches stay cacheable
        across calls.
        """
        if graphs is None:
            graphs = featurize_records(records, dbs, cards=cards,
                                       estimator_cache=estimator_cache,
                                       feat_cache=feat_cache)
            if batch_cache is None and feat_cache is None:
                batch_cache = False  # one-shot graphs: nothing to memoize
        return predict_runtimes(self.model, graphs, self.feature_scalers,
                                self.target_scaler, batch_cache=batch_cache)

    def predict_trace(self, trace, dbs, cards="deepdb", estimator_cache=None):
        return self.predict_records(list(trace), dbs, cards=cards,
                                    estimator_cache=estimator_cache)

    def evaluate(self, trace, dbs, cards="deepdb", estimator_cache=None,
                 graphs=None, batch_cache=None):
        """Q-error summary of predictions against the trace's true runtimes."""
        records = list(trace)
        predictions = self.predict_records(records, dbs, cards=cards,
                                           estimator_cache=estimator_cache,
                                           graphs=graphs,
                                           batch_cache=batch_cache)
        actuals = np.array([r.runtime_ms for r in records])
        return q_error_metrics(predictions, actuals)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def _full_state(self):
        """Model parameters + scaler state, as one flat checkpoint dict."""
        state = self.model.state_dict()
        for node_type, scaler_state in self.feature_scalers.state().items():
            state[f"__scaler__{node_type}__mean"] = scaler_state["mean"]
            state[f"__scaler__{node_type}__std"] = scaler_state["std"]
        state["__target__"] = np.array([self.target_scaler.mean,
                                        self.target_scaler.std])
        return state

    def _metadata(self):
        return {
            "hidden_dim": self.config.hidden_dim,
            "dropout": self.config.dropout,
            "seed": self.config.seed,
            "dtype": self.config.dtype,
        }

    def save(self, path):
        save_state(path, self._full_state(), metadata=self._metadata())

    def to_bytes(self):
        """The model as checkpoint bytes (the ``.npz`` :meth:`save` writes).

        The serving registry stores deployments as these bytes, so a
        published model round-trips through the exact
        :mod:`repro.nn.serialize` path a file checkpoint does — dtypes
        intact, reload bit-identical.
        """
        buffer = io.BytesIO()
        self.save(buffer)
        return buffer.getvalue()

    @classmethod
    def from_bytes(cls, payload):
        """Rebuild a model from :meth:`to_bytes` output."""
        return cls.load(io.BytesIO(payload))

    def state_digest(self):
        """Deterministic 16-byte hex digest of the full checkpoint state.

        Hashes every parameter and scaler array (name, dtype, shape, raw
        bytes) plus the architecture metadata — *not* the serialized ``.npz``
        container, whose zip framing embeds timestamps.  Two models with
        bit-identical state always share a digest, so the serving registry
        can content-address deployments with it.
        """
        digest = blake2b(digest_size=16)
        state = self._full_state()
        for name in sorted(state):
            values = np.ascontiguousarray(state[name])
            digest.update(name.encode())
            digest.update(str(values.dtype).encode())
            digest.update(repr(values.shape).encode())
            digest.update(values.tobytes())
        digest.update(repr(sorted(self._metadata().items())).encode())
        return digest.hexdigest()

    @classmethod
    def from_state(cls, state, metadata, copy=True):
        """Rebuild a model from a flat checkpoint dict plus metadata.

        ``state``/``metadata`` are what :func:`~repro.nn.serialize.
        load_state` returns for a checkpoint written by :meth:`save`.
        ``copy=False`` adopts the given arrays without copying — the
        registry's mmap hydration path passes read-only memory-mapped
        views here, so every process serving the same checkpoint shares
        one page-cache copy of the parameters.  Models built with
        ``copy=False`` are inference-only.
        """
        state = dict(state)
        config = TrainingConfig(hidden_dim=int(metadata["hidden_dim"]),
                                dropout=float(metadata["dropout"]),
                                seed=int(metadata["seed"]),
                                dtype=metadata.get("dtype", "float64"))
        scaler_states = {}
        target = state.pop("__target__")
        model_state = {}
        for key, value in state.items():
            if key.startswith("__scaler__"):
                _, _, rest = key.partition("__scaler__")
                node_type, _, which = rest.partition("__")
                scaler_states.setdefault(node_type, {})[which] = value
            else:
                model_state[key] = value
        model = ZeroShotModel(hidden_dim=config.hidden_dim,
                              dropout=config.dropout, seed=config.seed)
        model.load_state_dict(model_state, copy=copy)
        model.eval()
        return cls(model,
                   FeatureScalers.from_state(scaler_states),
                   TargetScaler(mean=float(target[0]), std=float(target[1])),
                   config)

    @classmethod
    def load(cls, path):
        state, metadata = load_state(path)
        return cls.from_state(state, metadata)
