"""The zero-shot cost model: architecture, training, few-shot mode, API."""

from .model import ZeroShotModel
from .training import (TrainingConfig, train_model, predict_runtimes,
                       predict_cache_stats, reset_predict_cache)
from .api import ZeroShotCostModel, featurize_records, EstimatorCache

__all__ = [
    "ZeroShotModel", "TrainingConfig", "train_model", "predict_runtimes",
    "predict_cache_stats", "reset_predict_cache",
    "ZeroShotCostModel", "featurize_records", "EstimatorCache",
]
