"""Training loop for zero-shot (and few-shot) cost models.

The engine's dtype policy lives here: training runs in float32 by default
(``TrainingConfig.dtype``), which roughly halves the memory traffic of the
matmul-bound hot loop; pass ``dtype="float64"`` to opt into full precision.
The model, its Adam state, the batch features and the log targets are all
cast once up front, so no per-step conversions occur.

Optimization runs on the flat-parameter engine by default: the flat
:class:`~repro.nn.Adam` moves all parameters into one contiguous buffer per
dtype, so a step is a handful of whole-model vectorized ops and each
early-stopping snapshot/restore is a single buffer copy instead of a
per-tensor ``state_dict`` deep copy.  ``TrainingConfig(flat_optimizer=False)``
trains through the preserved per-parameter reference path
(:class:`~repro.nn.Adam_reference`, ``state_dict`` snapshots); both paths
are bit-identical, which the tier-1 suite asserts.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from .. import perfstats
from ..featurization import BatchCache, FeatureScalers, TargetScaler, make_batch
from ..nn import (Adam, Adam_reference, QErrorLoss, clip_grad_norm,
                  clip_grad_norm_reference, no_grad)

__all__ = ["TrainingConfig", "train_model", "predict_runtimes",
           "predict_cache_stats", "reset_predict_cache"]

# Shared across predict_runtimes calls: the benchmark suite and the public
# API evaluate the same featurized graphs repeatedly (per cardinality mode,
# per experiment), so batches are rebuilt only on genuinely new graph lists.
# Bounded (LRU); hit/miss deltas are mirrored into the perfstats counters
# ``predict.batch_cache.hits`` / ``.misses`` so the smoke tests can observe
# it like every other engine cache, and :func:`reset_predict_cache` drops
# all pinned batches (long sessions, scaler turnover, test isolation).
_PREDICT_BATCH_CACHE = BatchCache(max_entries=64)


def predict_cache_stats():
    """Hit/miss/entry counters of the shared ``predict_runtimes`` cache."""
    return _PREDICT_BATCH_CACHE.stats()


def reset_predict_cache():
    """Drop every batch pinned by the shared ``predict_runtimes`` cache.

    The cache keys on graph *and scaler* identity, so a long session that
    keeps replacing models/scalers would otherwise pin stale scaler-bound
    batches until LRU eviction gets to them.
    """
    _PREDICT_BATCH_CACHE.clear()


@dataclass(frozen=True)
class TrainingConfig:
    """Hyperparameters for zero-shot training."""

    hidden_dim: int = 64
    epochs: int = 40
    batch_size: int = 64
    learning_rate: float = 1.5e-3
    weight_decay: float = 1e-5
    dropout: float = 0.05
    grad_clip: float = 5.0
    validation_fraction: float = 0.1
    early_stopping_patience: int = 8
    seed: int = 0
    verbose: bool = False
    dtype: str = "float32"
    # False trains through the per-parameter reference optimizer path
    # (Adam_reference + state_dict snapshots) — the executable spec the
    # flat engine must match bit-for-bit.
    flat_optimizer: bool = True

    def few_shot(self, epochs=15, learning_rate=4e-4):
        """Config variant for fine-tuning (lower LR, fewer epochs)."""
        return replace(self, epochs=epochs, learning_rate=learning_rate,
                       validation_fraction=0.0, early_stopping_patience=epochs)


def _epoch_batches(n, batch_size, rng):
    order = rng.permutation(n)
    for start in range(0, n, batch_size):
        yield order[start:start + batch_size]


def train_model(model, graphs, runtimes_ms, config, feature_scalers=None,
                target_scaler=None):
    """Train ``model`` on (graph, runtime) pairs with the Q-error loss.

    Scalers are fitted here when not supplied (fine-tuning passes the ones
    from pre-training so the feature space stays consistent).  Returns
    ``(feature_scalers, target_scaler, history)``.
    """
    runtimes_ms = np.asarray(runtimes_ms, dtype=np.float64)
    if len(graphs) != len(runtimes_ms):
        raise ValueError("graphs and runtimes must align")
    if len(graphs) == 0:
        raise ValueError("cannot train on an empty dataset")

    rng = np.random.default_rng(config.seed)
    dtype = np.dtype(config.dtype)
    model.to(dtype)
    if feature_scalers is None:
        feature_scalers = FeatureScalers().fit(graphs)
    if target_scaler is None:
        target_scaler = TargetScaler().fit(runtimes_ms)

    n = len(graphs)
    n_val = int(n * config.validation_fraction)
    order = rng.permutation(n)
    val_idx, train_idx = order[:n_val], order[n_val:]
    if len(train_idx) == 0:
        train_idx, val_idx = order, order[:0]

    log_targets = np.log(np.maximum(runtimes_ms, 1e-3)).astype(dtype)
    loss_fn = QErrorLoss()
    params = list(model.parameters())
    if config.flat_optimizer:
        optimizer = Adam(params, lr=config.learning_rate,
                         weight_decay=config.weight_decay)
        clip = clip_grad_norm
    else:
        optimizer = Adam_reference(params, lr=config.learning_rate,
                                   weight_decay=config.weight_decay)
        clip = clip_grad_norm_reference

    # Batches are materialized once, cast to the training dtype once, and
    # reused across epochs (shuffling the batch *order* per epoch): batch
    # construction and dtype conversion would otherwise recur every step.
    train_batches = []
    for indices in _epoch_batches(len(train_idx), config.batch_size, rng):
        batch_indices = train_idx[indices]
        batch = make_batch([graphs[i] for i in batch_indices],
                           feature_scalers).cast_(dtype)
        train_batches.append((batch, log_targets[batch_indices]))
    val_batch = None
    if len(val_idx):
        val_batch = (make_batch([graphs[i] for i in val_idx],
                                feature_scalers).cast_(dtype),
                     log_targets[val_idx])

    def batch_loss(batch_and_targets):
        batch, target_log = batch_and_targets
        output = model(batch)
        pred_log = output * target_scaler.std + target_scaler.mean
        return loss_fn(pred_log, target_log)

    history = {"train_loss": [], "val_loss": []}
    best_val = np.inf
    best_state = None
    patience_left = config.early_stopping_patience

    for epoch in range(config.epochs):
        model.train()
        epoch_losses = []
        for batch_index in rng.permutation(len(train_batches)):
            optimizer.zero_grad()
            loss = batch_loss(train_batches[batch_index])
            loss.backward()
            clip(params, config.grad_clip)
            optimizer.step()
            epoch_losses.append(loss.item())
        history["train_loss"].append(float(np.mean(epoch_losses)))

        if val_batch is not None:
            model.eval()
            with no_grad():
                val_loss = batch_loss(val_batch).item()
            history["val_loss"].append(val_loss)
            if val_loss < best_val - 1e-4:
                best_val = val_loss
                if config.flat_optimizer:
                    # One contiguous copy per dtype instead of a per-tensor
                    # state_dict deep copy.
                    best_state = optimizer.space.snapshot()
                    perfstats.increment("training.flat_snapshot")
                else:
                    best_state = model.state_dict()
                patience_left = config.early_stopping_patience
            else:
                patience_left -= 1
                if patience_left <= 0:
                    break
        if config.verbose:
            val_text = (f" val={history['val_loss'][-1]:.3f}"
                        if history["val_loss"] else "")
            print(f"epoch {epoch:3d} train={history['train_loss'][-1]:.3f}"
                  f"{val_text}")

    if best_state is not None:
        if config.flat_optimizer:
            optimizer.space.restore(best_state)
            perfstats.increment("training.flat_restore")
        else:
            model.load_state_dict(best_state)
    model.eval()
    return feature_scalers, target_scaler, history


def predict_runtimes(model, graphs, feature_scalers, target_scaler,
                     batch_size=256, batch_cache=None):
    """Predicted runtimes in milliseconds (inference mode).

    Runs the model's graph-free numpy path (dispatched under ``no_grad``);
    batches are memoized by graph identity in ``batch_cache`` (a shared
    default cache when not given), so repeated evaluation of the same
    featurized graphs skips batch construction entirely.  Pass
    ``batch_cache=False`` to disable memoization (e.g. for graphs that will
    never be seen again).
    """
    if not graphs:
        return np.array([])
    if batch_cache is None:
        batch_cache = _PREDICT_BATCH_CACHE
    model.eval()
    outputs = []
    with no_grad():
        if batch_cache is False:
            for start in range(0, len(graphs), batch_size):
                batch = make_batch(graphs[start:start + batch_size],
                                   feature_scalers)
                outputs.append(model(batch).numpy())
        else:
            # get_chunks keys each chunk consistently: a graph list that
            # shifted or grew still hits every previously cached chunk
            # instead of re-batching on the new boundaries.
            hits0, misses0 = batch_cache.hits, batch_cache.misses
            for batch in batch_cache.get_chunks(graphs, feature_scalers,
                                                batch_size):
                outputs.append(model(batch).numpy())
            if batch_cache is _PREDICT_BATCH_CACHE:
                perfstats.increment("predict.batch_cache.hits",
                                    batch_cache.hits - hits0)
                perfstats.increment("predict.batch_cache.misses",
                                    batch_cache.misses - misses0)
    scaled = np.concatenate(outputs)
    return target_scaler.to_runtime_ms(scaled)
