"""The zero-shot cost model architecture (Section 3, Algorithm 1).

Three stages, exactly as in the paper:

1. **Node encoding** — a node-type-specific MLP maps each node's transferable
   feature vector to an initial hidden state ``h_v`` (Fig. 3, step 2).
2. **Bottom-up message passing** — in topological order, each node combines
   the *sum* of its children's updated states (DeepSets-style) concatenated
   with its own initial state through a node-type-specific combine MLP:
   ``h'_v = MLP'_T(v)( sum_u h'_u  ⊕  h_v )`` (Fig. 3, step 3).
3. **Estimation** — the updated root state feeds the estimation MLP, which
   outputs the (standardized log) runtime (Fig. 3, step 4).

All stages are differentiable and trained end-to-end with the Q-error loss.
"""

from __future__ import annotations

import numpy as np

from ..featurization import FEATURE_DIMS, GraphBatch, NODE_TYPES
from ..nn import MLP, Module, Tensor, concat, scatter_sum

__all__ = ["ZeroShotModel"]


class ZeroShotModel(Module):
    """Node-type MLP encoders + bottom-up message passing + estimation MLP."""

    def __init__(self, hidden_dim=64, n_encoder_layers=1, n_combine_layers=1,
                 dropout=0.0, seed=0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.hidden_dim = hidden_dim
        self.encoders = {
            node_type: MLP(FEATURE_DIMS[node_type],
                           [hidden_dim] * n_encoder_layers, hidden_dim,
                           dropout=dropout, rng=rng)
            for node_type in NODE_TYPES
        }
        self.combiners = {
            node_type: MLP(2 * hidden_dim,
                           [hidden_dim] * n_combine_layers, hidden_dim,
                           dropout=dropout, rng=rng)
            for node_type in NODE_TYPES
        }
        self.estimator = MLP(hidden_dim, [hidden_dim, hidden_dim // 2], 1,
                             dropout=dropout, rng=rng)

    def forward(self, batch: GraphBatch) -> Tensor:
        """Predict one (standardized log) runtime per graph in the batch."""
        # Step 2: initial hidden states, one encoder per node type.  Global
        # node ids are grouped by type, so concatenating per-type blocks in
        # NODE_TYPES order yields the global hidden-state matrix.
        blocks = []
        for node_type in NODE_TYPES:
            if batch.type_counts.get(node_type, 0):
                blocks.append(self.encoders[node_type](
                    Tensor(batch.features[node_type])))
        initial = concat(blocks, axis=0)

        # Step 3: bottom-up pass, level by level.  ``updated`` accumulates
        # h' for all processed nodes (zeros elsewhere); gathers at level L
        # only read nodes of levels < L, which are already filled in.
        updated = Tensor(np.zeros((batch.n_nodes, self.hidden_dim)))
        for level_groups in batch.levels:
            for group in level_groups:
                n_group = len(group.node_indices)
                if group.edge_children.size:
                    child_states = updated.gather_rows(group.edge_children)
                    child_sum = scatter_sum(child_states,
                                            group.edge_parent_slots, n_group)
                else:
                    child_sum = Tensor(np.zeros((n_group, self.hidden_dim)))
                own = initial.gather_rows(group.node_indices)
                new_states = self.combiners[group.node_type](
                    concat([child_sum, own], axis=1))
                updated = updated + scatter_sum(new_states,
                                                group.node_indices,
                                                batch.n_nodes)

        # Step 4: estimation MLP on the root states.
        root_states = updated.gather_rows(batch.roots)
        return self.estimator(root_states).reshape(-1)
