"""The zero-shot cost model architecture (Section 3, Algorithm 1).

Three stages, exactly as in the paper:

1. **Node encoding** — a node-type-specific MLP maps each node's transferable
   feature vector to an initial hidden state ``h_v`` (Fig. 3, step 2).
2. **Bottom-up message passing** — in topological order, each node combines
   the *sum* of its children's updated states (DeepSets-style) concatenated
   with its own initial state through a node-type-specific combine MLP:
   ``h'_v = MLP'_T(v)( sum_u h'_u  ⊕  h_v )`` (Fig. 3, step 3).
3. **Estimation** — the updated root state feeds the estimation MLP, which
   outputs the (standardized log) runtime (Fig. 3, step 4).

All stages are differentiable and trained end-to-end with the Q-error loss.

Two execution paths share the same parameters:

* :meth:`ZeroShotModel.forward` builds the autograd graph for training.
  Updated hidden states are assembled by *block concatenation*: each
  (level, type) group's combiner output is appended to a list and levels
  gather children out of the concatenation via precomputed positions
  (``GraphBatch.mp_positions``), instead of adding a dense
  ``O(n_nodes × hidden)`` scatter per group.
* :meth:`ZeroShotModel.forward_inference` is the graph-free fast path: pure
  numpy, zero ``Tensor``/closure allocation, hidden states written in place
  into one preallocated buffer.  ``forward`` dispatches to it automatically
  under ``no_grad``.
"""

from __future__ import annotations

import numpy as np

from .. import perfstats
from ..featurization import FEATURE_DIMS, GraphBatch, NODE_TYPES
from ..nn import MLP, Module, Tensor, concat, scatter_sum, segment_sum
from ..nn.tensor import (activation_numpy, dropout_keep_mask, is_grad_enabled,
                         _unbroadcast)

__all__ = ["ZeroShotModel"]


def _combine_first_layer(assembled, initial, group, n_group, mlp):
    """The combine step's input stage as one tape node.

    Fuses gather(children) → segment-sum → concat with gather(own) → first
    combiner layer (affine + activation + dropout) — the op chain the loop
    version builds from five separate nodes.  Forward values, gradients and
    the dropout rng stream are identical; the backward pass accumulates
    straight into ``assembled.grad`` / ``initial.grad`` rows (children and
    update slots are unique and disjoint across groups, so row-wise adds
    equal the dense scatters they replace) without per-group dense buffers.
    """
    layer = mlp.linears[0]
    weight, bias = layer.weight, layer.bias
    dtype = initial.data.dtype
    hidden = initial.data.shape[1]
    combined = np.zeros((n_group, 2 * hidden), dtype=dtype)
    child_positions = group.child_positions
    if group.edge_children.size:
        segment_sum(assembled.data[child_positions],
                    group.edge_parent_slots, n_group,
                    out=combined[:, :hidden])
    combined[:, hidden:] = initial.data[group.node_indices]

    pre = combined @ weight.data
    if bias is not None:
        pre += bias.data
    data = activation_numpy(mlp.activation, pre, mlp.negative_slope)
    if mlp.activation == "relu":
        deriv = pre > 0
    elif mlp.activation == "leaky_relu":
        deriv = np.where(pre > 0, pre.dtype.type(1.0),
                         pre.dtype.type(mlp.negative_slope))
    elif mlp.activation == "tanh":
        deriv = data * data
        np.subtract(1.0, deriv, out=deriv)
    else:  # sigmoid
        deriv = data * (1.0 - data)
    if mlp.training and mlp.dropout > 0.0:
        keep = dropout_keep_mask(mlp._dropout_rngs[0], data.shape,
                                 mlp.dropout, dtype)
        data *= keep
        deriv = deriv * keep

    def backward(grad, asm=assembled, init=initial, w=weight, b=bias,
                 d=deriv, comb=combined, grp=group, n=n_group):
        grad_pre = grad * d
        if w.requires_grad:
            w._accumulate(comb.T @ grad_pre, owned=True)
        if b is not None and b.requires_grad:
            g = _unbroadcast(grad_pre, b.data.shape)
            b._accumulate(g, owned=g is not grad_pre)
        needs_asm = asm is not None and asm.requires_grad \
            and grp.edge_children.size
        needs_init = init.requires_grad
        if not (needs_asm or needs_init):
            return
        grad_comb = grad_pre @ w.data.T
        if needs_asm:
            if asm.grad is None:
                asm.grad = np.zeros(asm.data.shape, dtype=asm.data.dtype)
            # Each node is the child of exactly one parent, so these rows
            # are written by exactly one group: the row-wise add is the
            # dense zero-buffer scatter of the loop version, minus the
            # buffer.
            asm.grad[grp.child_positions] += \
                grad_comb[:, :hidden][grp.edge_parent_slots]
        if needs_init:
            if init.grad is None:
                init.grad = np.zeros(init.data.shape, dtype=init.data.dtype)
            init.grad[grp.node_indices] += grad_comb[:, hidden:]

    parents = [initial, weight]
    if assembled is not None:
        parents.append(assembled)
    if bias is not None:
        parents.append(bias)
    return Tensor._make(data, tuple(parents), backward)


class ZeroShotModel(Module):
    """Node-type MLP encoders + bottom-up message passing + estimation MLP."""

    def __init__(self, hidden_dim=64, n_encoder_layers=1, n_combine_layers=1,
                 dropout=0.0, seed=0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.hidden_dim = hidden_dim
        self.encoders = {
            node_type: MLP(FEATURE_DIMS[node_type],
                           [hidden_dim] * n_encoder_layers, hidden_dim,
                           dropout=dropout, rng=rng)
            for node_type in NODE_TYPES
        }
        self.combiners = {
            node_type: MLP(2 * hidden_dim,
                           [hidden_dim] * n_combine_layers, hidden_dim,
                           dropout=dropout, rng=rng)
            for node_type in NODE_TYPES
        }
        self.estimator = MLP(hidden_dim, [hidden_dim, hidden_dim // 2], 1,
                             dropout=dropout, rng=rng)

    def forward(self, batch: GraphBatch) -> Tensor:
        """Predict one (standardized log) runtime per graph in the batch."""
        if not is_grad_enabled():
            return Tensor(self.forward_inference(batch))

        dtype = self.param_dtype()
        features = batch.features_as(dtype)

        # Step 2: initial hidden states, one encoder per node type.  Global
        # node ids are grouped by type, so concatenating per-type blocks in
        # NODE_TYPES order yields the global hidden-state matrix.
        blocks = []
        for node_type in NODE_TYPES:
            if batch.type_counts.get(node_type, 0):
                blocks.append(self.encoders[node_type](
                    Tensor(features[node_type])))
        initial = concat(blocks, axis=0)

        # Step 3: bottom-up pass, level by level.  Instead of accumulating
        # into a dense (n_nodes, hidden) matrix per group, each group's
        # combiner output becomes one block; at the start of a level the
        # blocks so far are concatenated once and children (always at lower
        # levels) are gathered out of it via the precomputed mp positions.
        parts = []
        assembled = None
        for level_groups in batch.levels:
            if parts:
                assembled = concat(parts, axis=0)
            for group in level_groups:
                n_group = len(group.node_indices)
                mlp = self.combiners[group.node_type]
                if len(mlp.linears) > 1:
                    # Gather + segment-sum + concat + first combiner layer
                    # as one tape node (bit-identical to the op chain).
                    hidden = _combine_first_layer(assembled, initial, group,
                                                  n_group, mlp)
                    parts.append(mlp.forward_tail(hidden, start=1))
                    continue
                if group.edge_children.size:
                    # child_positions / node_indices are unique by
                    # construction (each node is one child, updated once),
                    # so backward scatters with plain assignment.
                    child_states = assembled.gather_rows(
                        group.child_positions, assume_unique=True)
                    child_sum = scatter_sum(child_states,
                                            group.edge_parent_slots, n_group)
                else:
                    child_sum = Tensor(np.zeros((n_group, self.hidden_dim),
                                                dtype=dtype))
                own = initial.gather_rows(group.node_indices,
                                          assume_unique=True)
                parts.append(mlp(concat([child_sum, own], axis=1)))

        # Step 4: estimation MLP on the root states (gathered from the
        # concatenated blocks through the mp-order positions).
        updated = concat(parts, axis=0)
        root_states = updated.gather_rows(batch.root_positions,
                                          assume_unique=True)
        return self.estimator(root_states).reshape(-1)

    def forward_inference(self, batch: GraphBatch) -> np.ndarray:
        """Graph-free forward pass: pure numpy, no Tensor/tape allocation.

        Semantically identical to :meth:`forward` in eval mode (dropout
        consumes the same rng stream when active); used automatically under
        ``no_grad`` and by ``predict_runtimes``.
        """
        perfstats.increment("model.graph_free_inference")
        dtype = self.param_dtype()
        features = batch.features_as(dtype)

        initial = np.empty((batch.n_nodes, self.hidden_dim), dtype=dtype)
        for node_type in NODE_TYPES:
            count = batch.type_counts.get(node_type, 0)
            if count:
                offset = batch.type_offsets[node_type]
                initial[offset:offset + count] = \
                    self.encoders[node_type].forward_numpy(features[node_type])

        # Each node is updated exactly once and gathers only read finished
        # lower levels, so one preallocated buffer indexed by global id
        # replaces the autograd block assembly.
        updated = np.empty((batch.n_nodes, self.hidden_dim), dtype=dtype)
        for level_groups in batch.levels:
            for group in level_groups:
                n_group = len(group.node_indices)
                if group.edge_children.size:
                    # Parent slots are emitted sorted by the batcher, so the
                    # reduceat-based segmented sum applies (bit-identical to
                    # the np.add.at scatter it replaces).
                    child_sum = segment_sum(
                        updated[group.edge_children],
                        group.edge_parent_slots, n_group)
                else:
                    child_sum = np.zeros((n_group, self.hidden_dim),
                                         dtype=dtype)
                combined = np.concatenate(
                    (child_sum, initial[group.node_indices]), axis=1)
                updated[group.node_indices] = \
                    self.combiners[group.node_type].forward_numpy(combined)

        root_states = updated[batch.roots]
        return self.estimator.forward_numpy(root_states).reshape(-1)
