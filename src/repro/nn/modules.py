"""Neural-network modules built on :mod:`repro.nn.tensor`.

Provides the layers the zero-shot architecture needs: linear layers, small
multi-layer perceptrons with configurable activations, and dropout.  Modules
follow a simplified PyTorch-like protocol (``parameters()``, ``train()`` /
``eval()``, ``state_dict()`` / ``load_state_dict()``).
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor

__all__ = ["Module", "Linear", "ReLU", "LeakyReLU", "Tanh", "Sigmoid",
           "Dropout", "Sequential", "MLP"]


class Module:
    """Base class for all neural modules."""

    def __init__(self):
        self.training = True

    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def _children(self):
        for name, value in vars(self).items():
            if isinstance(value, Module):
                yield name, value
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield f"{name}.{i}", item
            elif isinstance(value, dict):
                for key, item in value.items():
                    if isinstance(item, Module):
                        yield f"{name}.{key}", item

    def parameters(self):
        """Yield all trainable tensors of this module and its children."""
        for value in vars(self).values():
            if isinstance(value, Tensor) and value.requires_grad:
                yield value
        for _, child in self._children():
            yield from child.parameters()

    def named_parameters(self, prefix=""):
        for name, value in vars(self).items():
            if isinstance(value, Tensor) and value.requires_grad:
                yield prefix + name, value
        for name, child in self._children():
            yield from child.named_parameters(prefix + name + ".")

    def zero_grad(self):
        for param in self.parameters():
            param.grad = None

    def train(self, mode=True):
        self.training = mode
        for _, child in self._children():
            child.train(mode)
        return self

    def eval(self):
        return self.train(False)

    def num_parameters(self):
        return sum(p.size for p in self.parameters())

    def state_dict(self):
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state):
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state mismatch: missing={sorted(missing)}, "
                           f"unexpected={sorted(unexpected)}")
        for name, values in state.items():
            param = own[name]
            if param.data.shape != values.shape:
                raise ValueError(f"shape mismatch for {name}: "
                                 f"{param.data.shape} vs {values.shape}")
            param.data = np.array(values, dtype=np.float64, copy=True)


class Linear(Module):
    """Affine map ``y = x W + b`` with He/Xavier initialization."""

    def __init__(self, in_features, out_features, bias=True, rng=None, init="he"):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        if init == "he":
            scale = np.sqrt(2.0 / in_features)
        elif init == "xavier":
            scale = np.sqrt(2.0 / (in_features + out_features))
        else:
            raise ValueError(f"unknown init {init!r}")
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Tensor(rng.normal(0.0, scale, size=(in_features, out_features)),
                             requires_grad=True, name="weight")
        self.bias = None
        if bias:
            self.bias = Tensor(np.zeros(out_features), requires_grad=True, name="bias")

    def forward(self, x):
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class ReLU(Module):
    def forward(self, x):
        return x.relu()


class LeakyReLU(Module):
    def __init__(self, negative_slope=0.01):
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x):
        return x.leaky_relu(self.negative_slope)


class Tanh(Module):
    def forward(self, x):
        return x.tanh()


class Sigmoid(Module):
    def forward(self, x):
        return x.sigmoid()


class Dropout(Module):
    """Inverted dropout; active only in training mode."""

    def __init__(self, p=0.1, seed=0):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p
        self._rng = np.random.default_rng(seed)

    def forward(self, x):
        return x.dropout(self.p, self._rng, training=self.training)


class Sequential(Module):
    def __init__(self, *layers):
        super().__init__()
        self.layers = list(layers)

    def forward(self, x):
        for layer in self.layers:
            x = layer(x)
        return x


_ACTIVATIONS = {"relu": ReLU, "leaky_relu": LeakyReLU, "tanh": Tanh, "sigmoid": Sigmoid}


class MLP(Module):
    """Multi-layer perceptron: the basic building block of all paper models.

    ``MLP(10, [64, 64], 32)`` maps 10 inputs through two hidden layers of 64
    units to 32 outputs, with the chosen activation between layers (none after
    the final layer) and optional dropout after each hidden activation.
    """

    def __init__(self, in_features, hidden_sizes, out_features,
                 activation="leaky_relu", dropout=0.0, rng=None, seed=0):
        super().__init__()
        if activation not in _ACTIVATIONS:
            raise ValueError(f"unknown activation {activation!r}")
        rng = rng if rng is not None else np.random.default_rng(seed)
        sizes = [in_features] + list(hidden_sizes) + [out_features]
        layers = []
        for i, (n_in, n_out) in enumerate(zip(sizes[:-1], sizes[1:])):
            layers.append(Linear(n_in, n_out, rng=rng))
            if i < len(sizes) - 2:
                layers.append(_ACTIVATIONS[activation]())
                if dropout > 0.0:
                    layers.append(Dropout(dropout, seed=int(rng.integers(1 << 31))))
        self.net = Sequential(*layers)
        self.in_features = in_features
        self.out_features = out_features

    def forward(self, x):
        return self.net(x)
