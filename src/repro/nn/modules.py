"""Neural-network modules built on :mod:`repro.nn.tensor`.

Provides the layers the zero-shot architecture needs: linear layers, small
multi-layer perceptrons with configurable activations, and dropout.  Modules
follow a simplified PyTorch-like protocol (``parameters()``, ``train()`` /
``eval()``, ``state_dict()`` / ``load_state_dict()``).

Every module involved in the inference hot path also implements
``forward_numpy(x)``: a graph-free evaluation on plain numpy arrays with
zero ``Tensor``/closure allocation, used by
:meth:`repro.core.model.ZeroShotModel.forward_inference`.
"""

from __future__ import annotations

import itertools
import re

import numpy as np

from .tensor import (Tensor, activation_numpy, dropout_keep_mask, linear,
                     linear_act_dropout, row_stable_matmul)

__all__ = ["Module", "Linear", "ReLU", "LeakyReLU", "Tanh", "Sigmoid",
           "Dropout", "Sequential", "MLP"]

# Distinct deterministic seeds for layers built without an explicit rng:
# layer k constructed in a process gets seed k (identical shapes no longer
# share identical weights).
_DEFAULT_SEEDS = itertools.count()


class Module:
    """Base class for all neural modules."""

    def __init__(self):
        self.training = True

    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def forward_numpy(self, x):
        """Graph-free forward on a numpy array (inference fast path)."""
        raise NotImplementedError(
            f"{type(self).__name__} has no numpy fast path")

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def _children(self):
        for name, value in vars(self).items():
            if isinstance(value, Module):
                yield name, value
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield f"{name}.{i}", item
            elif isinstance(value, dict):
                for key, item in value.items():
                    if isinstance(item, Module):
                        yield f"{name}.{key}", item

    def parameters(self):
        """Yield all trainable tensors of this module and its children."""
        for value in vars(self).values():
            if isinstance(value, Tensor) and value.requires_grad:
                yield value
        for _, child in self._children():
            yield from child.parameters()

    def named_parameters(self, prefix=""):
        for name, value in vars(self).items():
            if isinstance(value, Tensor) and value.requires_grad:
                yield prefix + name, value
        for name, child in self._children():
            yield from child.named_parameters(prefix + name + ".")

    def zero_grad(self):
        for param in self.parameters():
            param.grad = None

    def train(self, mode=True):
        self.training = mode
        for _, child in self._children():
            child.train(mode)
        return self

    def eval(self):
        return self.train(False)

    def to(self, dtype):
        """Cast all parameters to ``dtype`` in place (grads are dropped)."""
        dtype = np.dtype(dtype)
        for param in self.parameters():
            param.data = param.data.astype(dtype, copy=False)
            param.grad = None
        return self

    def param_dtype(self):
        """Dtype of the first parameter (``float64`` for empty modules)."""
        for param in self.parameters():
            return param.data.dtype
        return np.dtype(np.float64)

    def num_parameters(self):
        return sum(p.size for p in self.parameters())

    def state_dict(self):
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state, copy=True):
        """Load parameters; float32/float64 values keep their stored dtype.

        Checkpoints written before the fused-MLP refactor (parameters named
        ``...net.layers.N.weight``) are migrated to the current
        ``...linears.K.weight`` layout transparently.

        ``copy=False`` adopts the given arrays directly instead of copying —
        the inference-only mmap hydration path uses this so parameters stay
        read-only views of an on-disk checkpoint shared across processes.
        A model loaded this way must not be trained (its parameters may not
        be writable).
        """
        state = _migrate_legacy_mlp_keys(state)
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state mismatch: missing={sorted(missing)}, "
                           f"unexpected={sorted(unexpected)}")
        for name, values in state.items():
            param = own[name]
            if param.data.shape != values.shape:
                raise ValueError(f"shape mismatch for {name}: "
                                 f"{param.data.shape} vs {values.shape}")
            values = np.asarray(values)
            if values.dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
                values = values.astype(param.data.dtype)
            param.data = np.array(values, copy=True) if copy else values


_LEGACY_MLP_KEY = re.compile(r"^(.*?)net\.layers\.(\d+)\.(weight|bias)$")


def _migrate_legacy_mlp_keys(state):
    """Rename pre-refactor MLP keys (``net.layers.N.*``) to ``linears.K.*``.

    The old ``Sequential`` interleaved parameter-free activation/dropout
    modules between linear layers, so legacy indices are sparse; K is the
    rank of N among the legacy indices sharing the same module prefix.
    """
    legacy_indices = {}
    for key in state:
        match = _LEGACY_MLP_KEY.match(key)
        if match:
            legacy_indices.setdefault(match.group(1), set()).add(
                int(match.group(2)))
    if not legacy_indices:
        return state
    ranks = {prefix: {index: rank
                      for rank, index in enumerate(sorted(indices))}
             for prefix, indices in legacy_indices.items()}
    migrated = {}
    for key, values in state.items():
        match = _LEGACY_MLP_KEY.match(key)
        if match:
            prefix, index, leaf = (match.group(1), int(match.group(2)),
                                   match.group(3))
            key = f"{prefix}linears.{ranks[prefix][index]}.{leaf}"
        migrated[key] = values
    return migrated


class Linear(Module):
    """Affine map ``y = x W + b`` with He/Xavier initialization.

    Without an explicit ``rng`` each instance derives its own seed (two
    layers of the same shape get different weights); pass ``rng`` for
    reproducible initialization.
    """

    def __init__(self, in_features, out_features, bias=True, rng=None, init="he"):
        super().__init__()
        if rng is None:
            rng = np.random.default_rng(next(_DEFAULT_SEEDS))
        if init == "he":
            scale = np.sqrt(2.0 / in_features)
        elif init == "xavier":
            scale = np.sqrt(2.0 / (in_features + out_features))
        else:
            raise ValueError(f"unknown init {init!r}")
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Tensor(rng.normal(0.0, scale, size=(in_features, out_features)),
                             requires_grad=True, name="weight")
        self.bias = None
        if bias:
            self.bias = Tensor(np.zeros(out_features), requires_grad=True, name="bias")

    def forward(self, x):
        return linear(x, self.weight, self.bias)

    def forward_numpy(self, x):
        # Inference-path matmuls are row-stable (see row_stable_matmul):
        # a row's result is identical whether it travels alone or inside a
        # batch, which the serving layer's bit-identity contract relies on.
        w = self.weight.data
        if x.dtype != w.dtype:
            x = x.astype(w.dtype)
        out = row_stable_matmul(x, w)
        if self.bias is not None:
            out += self.bias.data
        return out


# The activation/dropout formulas live once, in repro.nn.tensor
# (activation_numpy / dropout_keep_mask); the modules delegate there.
class ReLU(Module):
    activation = "relu"

    def forward(self, x):
        return x.relu()

    def forward_numpy(self, x):
        return activation_numpy("relu", x)


class LeakyReLU(Module):
    activation = "leaky_relu"

    def __init__(self, negative_slope=0.01):
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x):
        return x.leaky_relu(self.negative_slope)

    def forward_numpy(self, x):
        return activation_numpy("leaky_relu", x, self.negative_slope)


class Tanh(Module):
    activation = "tanh"

    def forward(self, x):
        return x.tanh()

    def forward_numpy(self, x):
        return activation_numpy("tanh", x)


class Sigmoid(Module):
    activation = "sigmoid"

    def forward(self, x):
        return x.sigmoid()

    def forward_numpy(self, x):
        return activation_numpy("sigmoid", x)


class Dropout(Module):
    """Inverted dropout; active only in training mode."""

    def __init__(self, p=0.1, seed=0):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p
        self._rng = np.random.default_rng(seed)

    def forward(self, x):
        return x.dropout(self.p, self._rng, training=self.training)

    def forward_numpy(self, x):
        if not self.training or self.p <= 0.0:
            return x
        return x * dropout_keep_mask(self._rng, x.shape, self.p, x.dtype)


class Sequential(Module):
    def __init__(self, *layers):
        super().__init__()
        self.layers = list(layers)

    def forward(self, x):
        for layer in self.layers:
            x = layer(x)
        return x

    def forward_numpy(self, x):
        for layer in self.layers:
            x = layer.forward_numpy(x)
        return x


_ACTIVATIONS = {"relu": ReLU, "leaky_relu": LeakyReLU, "tanh": Tanh, "sigmoid": Sigmoid}


class MLP(Module):
    """Multi-layer perceptron: the basic building block of all paper models.

    ``MLP(10, [64, 64], 32)`` maps 10 inputs through two hidden layers of 64
    units to 32 outputs, with the chosen activation between layers (none after
    the final layer) and optional dropout after each hidden activation.

    The forward pass is fused: each hidden layer is a single
    ``linear_act_dropout`` tape node (affine map, activation and dropout
    mask in one op) instead of a chain of separate layer modules.
    """

    def __init__(self, in_features, hidden_sizes, out_features,
                 activation="leaky_relu", dropout=0.0, rng=None, seed=0):
        super().__init__()
        if activation not in _ACTIVATIONS:
            raise ValueError(f"unknown activation {activation!r}")
        rng = rng if rng is not None else np.random.default_rng(seed)
        sizes = [in_features] + list(hidden_sizes) + [out_features]
        self.activation = activation
        self.negative_slope = 0.01
        self.dropout = float(dropout)
        self.linears = [Linear(n_in, n_out, rng=rng)
                        for n_in, n_out in zip(sizes[:-1], sizes[1:])]
        self._dropout_rngs = [
            np.random.default_rng(int(rng.integers(1 << 31)))
            if dropout > 0.0 else None
            for _ in range(len(self.linears) - 1)
        ]
        self.in_features = in_features
        self.out_features = out_features

    def forward(self, x):
        return self.forward_tail(x, start=0)

    def forward_tail(self, x, start=0):
        """Forward from layer ``start`` on (0 = the whole MLP).

        Lets a caller that fused layer 0 into an upstream op (the zero-shot
        model's combine step) run the remaining layers through the same
        code path.
        """
        last = len(self.linears) - 1
        for i in range(start, len(self.linears)):
            layer = self.linears[i]
            if i < last:
                x = linear_act_dropout(
                    x, layer.weight, layer.bias, self.activation,
                    p=self.dropout, rng=self._dropout_rngs[i],
                    training=self.training,
                    negative_slope=self.negative_slope)
            else:
                x = linear(x, layer.weight, layer.bias)
        return x

    def forward_numpy(self, x):
        last = len(self.linears) - 1
        for i, layer in enumerate(self.linears):
            x = layer.forward_numpy(x)
            if i < last:
                x = activation_numpy(self.activation, x, self.negative_slope)
                if self.training and self.dropout > 0.0:
                    x = x * dropout_keep_mask(self._dropout_rngs[i], x.shape,
                                              self.dropout, x.dtype)
        return x
