"""Reverse-mode automatic differentiation on numpy arrays.

This module is the neural-network substrate of the reproduction: the paper
trains its zero-shot cost model (node-type MLPs + message passing) with
PyTorch, which is not available here, so we implement the required tensor
operations with hand-written backward passes.

The design follows the classic define-by-run tape: every operation returns a
new :class:`Tensor` holding references to its parents and a closure that
propagates gradients to them.  Calling :meth:`Tensor.backward` performs a
topological sort of the graph and accumulates gradients.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Tensor", "concat", "maximum", "scatter_sum", "no_grad", "is_grad_enabled"]

_GRAD_ENABLED = True


class no_grad:
    """Context manager that disables graph construction (for inference)."""

    def __enter__(self):
        global _GRAD_ENABLED
        self._prev = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, exc_type, exc, tb):
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._prev
        return False


def is_grad_enabled():
    return _GRAD_ENABLED


def _unbroadcast(grad, shape):
    """Sum ``grad`` so that it has ``shape`` (inverse of numpy broadcasting)."""
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over dimensions that were size 1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value):
    if isinstance(value, Tensor):
        raise TypeError("expected array-like, got Tensor")
    return np.asarray(value, dtype=np.float64)


class Tensor:
    """A numpy array with an optional gradient and autograd history."""

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward", "name")

    def __init__(self, data, requires_grad=False, _parents=(), _backward=None, name=None):
        self.data = np.asarray(data, dtype=np.float64)
        self.grad = None
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self._parents = _parents if self.requires_grad else ()
        self._backward = _backward if self.requires_grad else None
        self.name = name

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------
    @property
    def shape(self):
        return self.data.shape

    @property
    def ndim(self):
        return self.data.ndim

    @property
    def size(self):
        return self.data.size

    def __len__(self):
        return len(self.data)

    def __repr__(self):
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.data.shape}{flag})"

    def item(self):
        return float(self.data)

    def numpy(self):
        return self.data

    def detach(self):
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self):
        self.grad = None

    # ------------------------------------------------------------------
    # Graph construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _make(data, parents, backward):
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad):
        if self.grad is None:
            self.grad = np.array(grad, dtype=np.float64, copy=True)
        else:
            self.grad += grad

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other):
        other = other if isinstance(other, Tensor) else Tensor(_as_array(other))
        data = self.data + other.data

        def backward(grad, a=self, b=other):
            if a.requires_grad:
                a._accumulate(_unbroadcast(grad, a.data.shape))
            if b.requires_grad:
                b._accumulate(_unbroadcast(grad, b.data.shape))

        return Tensor._make(data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self):
        def backward(grad, a=self):
            if a.requires_grad:
                a._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other):
        other = other if isinstance(other, Tensor) else Tensor(_as_array(other))
        return self + (-other)

    def __rsub__(self, other):
        return Tensor(_as_array(other)) + (-self)

    def __mul__(self, other):
        other = other if isinstance(other, Tensor) else Tensor(_as_array(other))
        data = self.data * other.data

        def backward(grad, a=self, b=other):
            if a.requires_grad:
                a._accumulate(_unbroadcast(grad * b.data, a.data.shape))
            if b.requires_grad:
                b._accumulate(_unbroadcast(grad * a.data, b.data.shape))

        return Tensor._make(data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other):
        other = other if isinstance(other, Tensor) else Tensor(_as_array(other))
        data = self.data / other.data

        def backward(grad, a=self, b=other):
            if a.requires_grad:
                a._accumulate(_unbroadcast(grad / b.data, a.data.shape))
            if b.requires_grad:
                b._accumulate(_unbroadcast(-grad * a.data / (b.data ** 2), b.data.shape))

        return Tensor._make(data, (self, other), backward)

    def __rtruediv__(self, other):
        return Tensor(_as_array(other)) / self

    def __pow__(self, exponent):
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        data = self.data ** exponent

        def backward(grad, a=self, e=exponent):
            if a.requires_grad:
                a._accumulate(grad * e * a.data ** (e - 1))

        return Tensor._make(data, (self,), backward)

    def __matmul__(self, other):
        if not isinstance(other, Tensor):
            other = Tensor(_as_array(other))
        data = self.data @ other.data

        def backward(grad, a=self, b=other):
            if a.requires_grad:
                a._accumulate(grad @ b.data.T)
            if b.requires_grad:
                b._accumulate(a.data.T @ grad)

        return Tensor._make(data, (self, other), backward)

    # ------------------------------------------------------------------
    # Unary math
    # ------------------------------------------------------------------
    def exp(self):
        data = np.exp(self.data)

        def backward(grad, a=self, d=data):
            if a.requires_grad:
                a._accumulate(grad * d)

        return Tensor._make(data, (self,), backward)

    def log(self):
        data = np.log(self.data)

        def backward(grad, a=self):
            if a.requires_grad:
                a._accumulate(grad / a.data)

        return Tensor._make(data, (self,), backward)

    def abs(self):
        data = np.abs(self.data)

        def backward(grad, a=self):
            if a.requires_grad:
                a._accumulate(grad * np.sign(a.data))

        return Tensor._make(data, (self,), backward)

    def relu(self):
        mask = self.data > 0
        data = np.where(mask, self.data, 0.0)

        def backward(grad, a=self, m=mask):
            if a.requires_grad:
                a._accumulate(grad * m)

        return Tensor._make(data, (self,), backward)

    def leaky_relu(self, negative_slope=0.01):
        mask = self.data > 0
        data = np.where(mask, self.data, negative_slope * self.data)

        def backward(grad, a=self, m=mask, s=negative_slope):
            if a.requires_grad:
                a._accumulate(grad * np.where(m, 1.0, s))

        return Tensor._make(data, (self,), backward)

    def sigmoid(self):
        data = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60, 60)))

        def backward(grad, a=self, d=data):
            if a.requires_grad:
                a._accumulate(grad * d * (1.0 - d))

        return Tensor._make(data, (self,), backward)

    def tanh(self):
        data = np.tanh(self.data)

        def backward(grad, a=self, d=data):
            if a.requires_grad:
                a._accumulate(grad * (1.0 - d ** 2))

        return Tensor._make(data, (self,), backward)

    def clamp(self, min_value=None, max_value=None):
        data = np.clip(self.data, min_value, max_value)
        mask = np.ones_like(self.data)
        if min_value is not None:
            mask = mask * (self.data >= min_value)
        if max_value is not None:
            mask = mask * (self.data <= max_value)

        def backward(grad, a=self, m=mask):
            if a.requires_grad:
                a._accumulate(grad * m)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------
    # Reductions and reshaping
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims=False):
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad, a=self, ax=axis, kd=keepdims):
            if not a.requires_grad:
                return
            g = np.asarray(grad)
            if ax is not None and not kd:
                g = np.expand_dims(g, ax)
            a._accumulate(np.broadcast_to(g, a.data.shape).copy())

        return Tensor._make(data, (self,), backward)

    def mean(self, axis=None, keepdims=False):
        n = self.data.size if axis is None else self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / n)

    def reshape(self, *shape):
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        data = self.data.reshape(shape)

        def backward(grad, a=self):
            if a.requires_grad:
                a._accumulate(grad.reshape(a.data.shape))

        return Tensor._make(data, (self,), backward)

    def transpose(self):
        data = self.data.T

        def backward(grad, a=self):
            if a.requires_grad:
                a._accumulate(grad.T)

        return Tensor._make(data, (self,), backward)

    def gather_rows(self, index):
        """Select rows ``self[index]`` (first axis); repeats are allowed."""
        index = np.asarray(index, dtype=np.int64)
        data = self.data[index]

        def backward(grad, a=self, idx=index):
            if a.requires_grad:
                acc = np.zeros_like(a.data)
                np.add.at(acc, idx, grad)
                a._accumulate(acc)

        return Tensor._make(data, (self,), backward)

    def dropout(self, p, rng, training=True):
        """Inverted dropout: zero entries with probability ``p`` and rescale."""
        if not training or p <= 0.0:
            return self
        keep = (rng.random(self.data.shape) >= p) / (1.0 - p)
        return self * Tensor(keep)

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def backward(self, grad=None):
        if not self.requires_grad:
            raise RuntimeError("called backward on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar tensors")
            grad = np.ones_like(self.data)

        order = []
        visited = set()
        stack = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(np.asarray(grad, dtype=np.float64))
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)


def concat(tensors, axis=0):
    """Concatenate tensors along ``axis`` with gradient support."""
    tensors = list(tensors)
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad, parts=tensors, offs=offsets, ax=axis):
        for tensor, start, stop in zip(parts, offs[:-1], offs[1:]):
            if tensor.requires_grad:
                slicer = [slice(None)] * grad.ndim
                slicer[ax] = slice(start, stop)
                tensor._accumulate(grad[tuple(slicer)])

    return Tensor._make(data, tuple(tensors), backward)


def maximum(a, b):
    """Elementwise maximum; gradient flows to the larger input (ties split)."""
    a = a if isinstance(a, Tensor) else Tensor(_as_array(a))
    b = b if isinstance(b, Tensor) else Tensor(_as_array(b))
    data = np.maximum(a.data, b.data)
    a_wins = a.data > b.data
    tie = a.data == b.data

    def backward(grad, x=a, y=b, aw=a_wins, t=tie):
        ga = grad * (aw + 0.5 * t)
        gb = grad * (~aw & ~t) + grad * 0.5 * t
        if x.requires_grad:
            x._accumulate(_unbroadcast(ga, x.data.shape))
        if y.requires_grad:
            y._accumulate(_unbroadcast(gb, y.data.shape))

    return Tensor._make(data, (a, b), backward)


def scatter_sum(source, index, num_segments):
    """Sum rows of ``source`` into ``num_segments`` buckets given by ``index``.

    The workhorse of bottom-up message passing: child hidden states are
    scattered into their parents' slots. ``out[j] = sum_{i: index[i]=j} src[i]``.
    """
    index = np.asarray(index, dtype=np.int64)
    if index.ndim != 1 or len(index) != len(source.data):
        raise ValueError("index must be 1-D and match the number of source rows")
    data = np.zeros((num_segments,) + source.data.shape[1:], dtype=np.float64)
    np.add.at(data, index, source.data)

    def backward(grad, src=source, idx=index):
        if src.requires_grad:
            src._accumulate(grad[idx])

    return Tensor._make(data, (source,), backward)
