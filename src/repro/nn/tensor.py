"""Reverse-mode automatic differentiation on numpy arrays.

This module is the neural-network substrate of the reproduction: the paper
trains its zero-shot cost model (node-type MLPs + message passing) with
PyTorch, which is not available here, so we implement the required tensor
operations with hand-written backward passes.

The design follows the classic define-by-run tape: every operation returns a
new :class:`Tensor` holding references to its parents and a closure that
propagates gradients to them.  Calling :meth:`Tensor.backward` performs a
topological sort of the graph and accumulates gradients.

Three engine-level features keep the hot loop fast:

* **Fused ops** — :func:`linear` (matmul + bias in one tape node) and
  :func:`fused_act_dropout` (activation + inverted dropout in one node)
  replace chains of elementwise nodes in the MLP forward pass.
* **Gradient ownership** — backward closures that compute a *fresh* array
  hand it to ``_accumulate(..., owned=True)``, which adopts the buffer
  instead of deep-copying it.  Unowned gradients (views or shared upstream
  buffers) are still copied on first accumulation, so a parameter's ``grad``
  never aliases another node's buffer.
* **Flat parameter storage** — :class:`FlatParameterSpace` rebinds a fixed
  set of parameters so their ``data`` (and accumulated ``grad``) are views
  into one contiguous per-dtype buffer.  Optimizers then update the whole
  model with a handful of vectorized ops (see :class:`repro.nn.optim.Adam`)
  and early-stopping snapshots become a single buffer copy.  A parameter
  carrying a ``_grad_view`` receives its first gradient *into* the flat
  buffer instead of adopting the caller's array.

Floating-point precision is configurable module-wide: training runs in
``float32`` by default (see :class:`repro.core.training.TrainingConfig`),
while the library default for ad-hoc tensors stays ``float64``.  Use
:func:`set_default_dtype` / :func:`default_dtype` to change it; float
arrays passed into :class:`Tensor` keep their dtype.
"""

from __future__ import annotations

import threading

import numpy as np

__all__ = ["Tensor", "concat", "maximum", "scatter_sum", "linear",
           "fused_act_dropout", "linear_act_dropout", "activation_numpy",
           "dropout_keep_mask", "row_stable_matmul",
           "segment_sum", "FlatParameterSpace",
           "no_grad", "is_grad_enabled",
           "set_default_dtype", "get_default_dtype", "default_dtype"]

# Grad mode is *per-thread* (like torch.no_grad): a serving thread running
# inference under ``no_grad`` must not disable graph construction for a
# training thread — the continuous-learning controller fine-tunes while the
# predictor keeps serving in the same process.
_GRAD_STATE = threading.local()
_DEFAULT_DTYPE = np.dtype(np.float64)
_FLOAT_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))


def set_default_dtype(dtype):
    """Set the dtype used when wrapping non-float data (float32 or float64)."""
    global _DEFAULT_DTYPE
    dtype = np.dtype(dtype)
    if dtype not in _FLOAT_DTYPES:
        raise ValueError(f"unsupported dtype {dtype}; use float32 or float64")
    _DEFAULT_DTYPE = dtype


def get_default_dtype():
    return _DEFAULT_DTYPE


class default_dtype:
    """Context manager scoping :func:`set_default_dtype`."""

    def __init__(self, dtype):
        self._dtype = np.dtype(dtype)

    def __enter__(self):
        self._prev = _DEFAULT_DTYPE
        set_default_dtype(self._dtype)
        return self

    def __exit__(self, exc_type, exc, tb):
        set_default_dtype(self._prev)
        return False


class no_grad:
    """Context manager that disables graph construction (for inference).

    The switch is thread-local: entering ``no_grad`` on one thread leaves
    every other thread's autograd untouched.
    """

    def __enter__(self):
        self._prev = getattr(_GRAD_STATE, "enabled", True)
        _GRAD_STATE.enabled = False
        return self

    def __exit__(self, exc_type, exc, tb):
        _GRAD_STATE.enabled = self._prev
        return False


def is_grad_enabled():
    return getattr(_GRAD_STATE, "enabled", True)


def activation_numpy(kind, x, negative_slope=0.01):
    """Forward value of an activation on a plain numpy array.

    The single home of the activation formulas: the ``Tensor`` tape methods,
    :func:`fused_act_dropout` and the modules' ``forward_numpy`` fast path
    all evaluate through here, so the two execution paths cannot diverge.
    """
    if kind == "relu":
        return np.maximum(x, 0.0)
    if kind == "leaky_relu":
        # max(x, slope*x) picks x exactly where x > 0 and slope*x elsewhere
        # (0 < slope < 1): same values as the where() form, one less temp.
        return np.maximum(x, negative_slope * x)
    if kind == "tanh":
        return np.tanh(x)
    if kind == "sigmoid":
        return 1.0 / (1.0 + np.exp(-np.clip(x, -60, 60)))
    raise ValueError(f"unknown activation {kind!r}")


def dropout_keep_mask(rng, shape, p, dtype):
    """Inverted-dropout keep mask (zeros with probability ``p``, rescaled).

    The uniform draw runs natively in the working dtype: float32 models
    draw float32 randoms (half the generator work and memory traffic).
    Note a float32 draw consumes a *different* rng stream than a float64
    draw, so masks differ across dtypes — but they are deterministic per
    (rng state, dtype), which is the property the engine's bit-identity
    contracts rely on: every code path (fused tape ops, ``forward_numpy``,
    flat vs reference optimizer runs) draws through this one helper.
    The mask is built as a 0/1 array scaled in place — the kept entries are
    exactly 1, so scaling commutes with the cast and the values equal the
    ``(draw >= p) / (1 - p)`` formulation without full-size temporaries.
    """
    dtype = np.dtype(dtype)
    draw_dtype = dtype if dtype == np.dtype(np.float32) else np.float64
    keep = (rng.random(shape, dtype=draw_dtype) >= p).astype(dtype, copy=False)
    keep *= dtype.type(1.0 / (1.0 - p))
    return keep


def row_stable_matmul(x, w):
    """``x @ w`` with per-row results independent of the number of rows.

    BLAS dispatches degenerate matmuls — a single input row or a single
    output column — to gemv kernels whose reduction order over the shared
    dimension differs from the gemm kernels used for larger operands, so the
    *same* row can produce different low-order bits depending on how many
    other rows share the call.  The serving layer's contract (micro-batched
    predictions bit-identical to direct ``predict_runtimes`` calls, cached
    results valid under any later batch composition) needs row results that
    are a pure function of the row, so the graph-free inference path routes
    every matmul through here:

    * one output column: evaluated as an elementwise product reduced with
      ``sum(axis=1)`` — numpy reduces each row independently (pairwise, in a
      fixed order), so the result cannot depend on the other rows;
    * one input row (and >1 output column): padded to two rows so BLAS takes
      the gemm kernel, whose per-row results are row-count-invariant (the
      property ``tests/test_serving.py`` asserts across shapes);
    * everything else: plain ``@`` (gemm).

    The kernel choice depends only on ``w``'s shape — a model property — and
    the row count, never on which rows travel together, so any two batch
    compositions agree bitwise on shared rows.
    """
    if w.shape[1] == 1:
        return np.multiply(x, w[:, 0]).sum(axis=1, keepdims=True)
    if x.shape[0] == 1:
        padded = np.zeros((2, x.shape[1]), dtype=x.dtype)
        padded[0] = x[0]
        return (padded @ w)[:1]
    return x @ w


def _unbroadcast(grad, shape):
    """Sum ``grad`` so that it has ``shape`` (inverse of numpy broadcasting)."""
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over dimensions that were size 1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _coerce(data):
    """Wrap ``data`` as an array, casting non-float inputs to the default dtype.

    Float32/float64 arrays keep their dtype so a model's precision choice
    propagates through every op (numpy's promotion rules do the rest).
    """
    arr = np.asarray(data)
    if arr.dtype in _FLOAT_DTYPES:
        return arr
    return arr.astype(_DEFAULT_DTYPE)


def _as_array(value):
    if isinstance(value, Tensor):
        raise TypeError("expected array-like, got Tensor")
    return _coerce(value)


class Tensor:
    """A numpy array with an optional gradient and autograd history."""

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward",
                 "name", "_grad_view")

    def __init__(self, data, requires_grad=False, _parents=(), _backward=None, name=None):
        self.data = _coerce(data)
        self.grad = None
        self.requires_grad = (bool(requires_grad)
                              and getattr(_GRAD_STATE, "enabled", True))
        self._parents = _parents if self.requires_grad else ()
        self._backward = _backward if self.requires_grad else None
        self.name = name
        self._grad_view = None

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------
    @property
    def shape(self):
        return self.data.shape

    @property
    def ndim(self):
        return self.data.ndim

    @property
    def size(self):
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self):
        return len(self.data)

    def __repr__(self):
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.data.shape}{flag})"

    def item(self):
        return float(self.data)

    def numpy(self):
        return self.data

    def detach(self):
        return Tensor(self.data, requires_grad=False)

    def astype(self, dtype):
        """Dtype cast (no gradient flow; used for engine dtype policy)."""
        return Tensor(self.data.astype(dtype, copy=False))

    def zero_grad(self):
        self.grad = None

    # ------------------------------------------------------------------
    # Graph construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _make(data, parents, backward):
        requires = (any(p.requires_grad for p in parents)
                    and getattr(_GRAD_STATE, "enabled", True))
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad, owned=False):
        """Add ``grad`` into ``self.grad``.

        ``owned=True`` asserts the caller computed ``grad`` freshly and holds
        no other reference, letting the first accumulation adopt the buffer
        in place of a deep copy.  Unowned gradients (upstream buffers, views)
        are copied so ``self.grad`` never aliases another node's state.

        Parameters living in a :class:`FlatParameterSpace` carry a
        ``_grad_view`` into the space's flat gradient buffer; their first
        gradient is written into that view so optimizers see the whole
        model's gradient as one contiguous array.
        """
        if self.grad is None:
            view = self._grad_view
            if view is not None and view.shape == self.data.shape \
                    and view.dtype == self.data.dtype:
                np.copyto(view, grad)
                self.grad = view
                return
            dtype = self.data.dtype
            if (owned and isinstance(grad, np.ndarray) and grad.dtype == dtype
                    and grad.flags.owndata and grad.flags.writeable):
                self.grad = grad
            else:
                self.grad = np.array(grad, dtype=dtype, copy=True)
        else:
            self.grad += grad

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other):
        other = other if isinstance(other, Tensor) else Tensor(_as_array(other))
        data = self.data + other.data

        def backward(grad, a=self, b=other):
            if a.requires_grad:
                g = _unbroadcast(grad, a.data.shape)
                a._accumulate(g, owned=g is not grad)
            if b.requires_grad:
                g = _unbroadcast(grad, b.data.shape)
                b._accumulate(g, owned=g is not grad)

        return Tensor._make(data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self):
        def backward(grad, a=self):
            if a.requires_grad:
                a._accumulate(-grad, owned=True)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other):
        other = other if isinstance(other, Tensor) else Tensor(_as_array(other))
        return self + (-other)

    def __rsub__(self, other):
        return Tensor(_as_array(other)) + (-self)

    def __mul__(self, other):
        other = other if isinstance(other, Tensor) else Tensor(_as_array(other))
        data = self.data * other.data

        def backward(grad, a=self, b=other):
            if a.requires_grad:
                a._accumulate(_unbroadcast(grad * b.data, a.data.shape),
                              owned=True)
            if b.requires_grad:
                b._accumulate(_unbroadcast(grad * a.data, b.data.shape),
                              owned=True)

        return Tensor._make(data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other):
        other = other if isinstance(other, Tensor) else Tensor(_as_array(other))
        data = self.data / other.data

        def backward(grad, a=self, b=other):
            if a.requires_grad:
                a._accumulate(_unbroadcast(grad / b.data, a.data.shape),
                              owned=True)
            if b.requires_grad:
                b._accumulate(_unbroadcast(-grad * a.data / (b.data ** 2),
                                           b.data.shape), owned=True)

        return Tensor._make(data, (self, other), backward)

    def __rtruediv__(self, other):
        return Tensor(_as_array(other)) / self

    def __pow__(self, exponent):
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        data = self.data ** exponent

        def backward(grad, a=self, e=exponent):
            if a.requires_grad:
                a._accumulate(grad * e * a.data ** (e - 1), owned=True)

        return Tensor._make(data, (self,), backward)

    def __matmul__(self, other):
        if not isinstance(other, Tensor):
            other = Tensor(_as_array(other))
        data = self.data @ other.data

        def backward(grad, a=self, b=other):
            if a.requires_grad:
                a._accumulate(grad @ b.data.T, owned=True)
            if b.requires_grad:
                b._accumulate(a.data.T @ grad, owned=True)

        return Tensor._make(data, (self, other), backward)

    # ------------------------------------------------------------------
    # Unary math
    # ------------------------------------------------------------------
    def exp(self):
        data = np.exp(self.data)

        def backward(grad, a=self, d=data):
            if a.requires_grad:
                a._accumulate(grad * d, owned=True)

        return Tensor._make(data, (self,), backward)

    def log(self):
        data = np.log(self.data)

        def backward(grad, a=self):
            if a.requires_grad:
                a._accumulate(grad / a.data, owned=True)

        return Tensor._make(data, (self,), backward)

    def abs(self):
        data = np.abs(self.data)

        def backward(grad, a=self):
            if a.requires_grad:
                a._accumulate(grad * np.sign(a.data), owned=True)

        return Tensor._make(data, (self,), backward)

    def relu(self):
        mask = self.data > 0
        data = activation_numpy("relu", self.data)

        def backward(grad, a=self, m=mask):
            if a.requires_grad:
                a._accumulate(grad * m, owned=True)

        return Tensor._make(data, (self,), backward)

    def leaky_relu(self, negative_slope=0.01):
        mask = self.data > 0
        data = activation_numpy("leaky_relu", self.data, negative_slope)
        deriv = np.where(mask, 1.0, negative_slope).astype(self.data.dtype,
                                                           copy=False)

        def backward(grad, a=self, d=deriv):
            if a.requires_grad:
                a._accumulate(grad * d, owned=True)

        return Tensor._make(data, (self,), backward)

    def sigmoid(self):
        data = activation_numpy("sigmoid", self.data)

        def backward(grad, a=self, d=data):
            if a.requires_grad:
                a._accumulate(grad * d * (1.0 - d), owned=True)

        return Tensor._make(data, (self,), backward)

    def tanh(self):
        data = activation_numpy("tanh", self.data)

        def backward(grad, a=self, d=data):
            if a.requires_grad:
                a._accumulate(grad * (1.0 - d ** 2), owned=True)

        return Tensor._make(data, (self,), backward)

    def clamp(self, min_value=None, max_value=None):
        data = np.clip(self.data, min_value, max_value)
        mask = np.ones_like(self.data)
        if min_value is not None:
            mask = mask * (self.data >= min_value)
        if max_value is not None:
            mask = mask * (self.data <= max_value)

        def backward(grad, a=self, m=mask):
            if a.requires_grad:
                a._accumulate(grad * m, owned=True)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------
    # Reductions and reshaping
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims=False):
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad, a=self, ax=axis, kd=keepdims):
            if not a.requires_grad:
                return
            g = np.asarray(grad)
            if ax is not None and not kd:
                g = np.expand_dims(g, ax)
            a._accumulate(np.broadcast_to(g, a.data.shape).copy(), owned=True)

        return Tensor._make(data, (self,), backward)

    def mean(self, axis=None, keepdims=False):
        n = self.data.size if axis is None else self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / n)

    def reshape(self, *shape):
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        data = self.data.reshape(shape)

        def backward(grad, a=self):
            if a.requires_grad:
                a._accumulate(grad.reshape(a.data.shape))

        return Tensor._make(data, (self,), backward)

    def transpose(self):
        data = self.data.T

        def backward(grad, a=self):
            if a.requires_grad:
                a._accumulate(grad.T)

        return Tensor._make(data, (self,), backward)

    def gather_rows(self, index, assume_unique=False):
        """Select rows ``self[index]`` (first axis); repeats are allowed.

        ``assume_unique=True`` promises the caller that ``index`` has no
        repeats, so the backward pass scatters with plain fancy-index
        assignment instead of ``np.add.at`` (identical result, much faster).
        """
        index = np.asarray(index, dtype=np.int64)
        data = self.data[index]

        def backward(grad, a=self, idx=index, unique=assume_unique):
            if a.requires_grad:
                acc = np.zeros(a.data.shape, dtype=a.data.dtype)
                if unique:
                    acc[idx] = grad
                else:
                    np.add.at(acc, idx, grad)
                a._accumulate(acc, owned=True)

        return Tensor._make(data, (self,), backward)

    def dropout(self, p, rng, training=True):
        """Inverted dropout: zero entries with probability ``p`` and rescale."""
        if not training or p <= 0.0:
            return self
        return self * Tensor(dropout_keep_mask(rng, self.data.shape, p,
                                               self.data.dtype))

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def backward(self, grad=None):
        if not self.requires_grad:
            raise RuntimeError("called backward on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar tensors")
            grad = np.ones_like(self.data)

        order = []
        visited = set()
        stack = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(np.asarray(grad, dtype=self.data.dtype))
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)


def linear(x, weight, bias=None):
    """Fused affine map ``x @ weight + bias`` in a single tape node.

    One node instead of two (matmul, add) halves the closure allocations in
    the MLP hot loop; the bias add runs in place on the fresh matmul output.
    Gradients for ``weight``/``bias`` are handed to the accumulator as owned
    buffers (no deep copy).
    """
    if not isinstance(x, Tensor):
        x = Tensor(_as_array(x))
    data = x.data @ weight.data
    if bias is not None:
        data += bias.data

    def backward(grad, a=x, w=weight, b=bias):
        if a.requires_grad:
            a._accumulate(grad @ w.data.T, owned=True)
        if w.requires_grad:
            w._accumulate(a.data.T @ grad, owned=True)
        if b is not None and b.requires_grad:
            g = _unbroadcast(grad, b.data.shape)
            b._accumulate(g, owned=g is not grad)

    parents = (x, weight) if bias is None else (x, weight, bias)
    return Tensor._make(data, parents, backward)


_FUSED_ACTIVATIONS = frozenset({"relu", "leaky_relu", "tanh", "sigmoid"})


def fused_act_dropout(x, activation="leaky_relu", p=0.0, rng=None,
                      training=True, negative_slope=0.01):
    """Activation + inverted dropout fused into one tape node.

    The dropout mask is folded into the activation derivative, so forward
    and backward each touch the data once.  With ``p == 0`` or outside
    training this is just the fused activation.
    """
    if activation not in _FUSED_ACTIVATIONS:
        raise ValueError(f"unknown activation {activation!r}")
    xd = x.data
    data = activation_numpy(activation, xd, negative_slope)
    if activation == "relu":
        deriv = xd > 0
    elif activation == "leaky_relu":
        # dtype-typed scalars keep where() in the working dtype (no float64
        # intermediate + cast); the values are the same float32/float64
        # constants either way.
        deriv = np.where(xd > 0, xd.dtype.type(1.0),
                         xd.dtype.type(negative_slope))
    elif activation == "tanh":
        deriv = data * data
        np.subtract(1.0, deriv, out=deriv)
    else:  # sigmoid
        deriv = data * (1.0 - data)

    if training and p > 0.0:
        if rng is None:
            raise ValueError("dropout requires an rng in training mode")
        keep = dropout_keep_mask(rng, data.shape, p, xd.dtype)
        data *= keep
        deriv = deriv * keep

    def backward(grad, a=x, d=deriv):
        if a.requires_grad:
            a._accumulate(grad * d, owned=True)

    return Tensor._make(data, (x,), backward)


def linear_act_dropout(x, weight, bias=None, activation="leaky_relu", p=0.0,
                       rng=None, training=True, negative_slope=0.01):
    """One hidden MLP layer — affine map, activation, inverted dropout — as a
    single tape node.

    Equivalent to ``fused_act_dropout(linear(x, w, b), ...)`` op for op
    (bit-identical values and gradients, same rng stream), with one fewer
    tape node, closure and gradient hand-off per hidden layer.
    """
    if activation not in _FUSED_ACTIVATIONS:
        raise ValueError(f"unknown activation {activation!r}")
    if not isinstance(x, Tensor):
        x = Tensor(_as_array(x))
    pre = x.data @ weight.data
    if bias is not None:
        pre += bias.data
    data = activation_numpy(activation, pre, negative_slope)
    if activation == "relu":
        deriv = pre > 0
    elif activation == "leaky_relu":
        deriv = np.where(pre > 0, pre.dtype.type(1.0),
                         pre.dtype.type(negative_slope))
    elif activation == "tanh":
        deriv = data * data
        np.subtract(1.0, deriv, out=deriv)
    else:  # sigmoid
        deriv = data * (1.0 - data)
    if training and p > 0.0:
        if rng is None:
            raise ValueError("dropout requires an rng in training mode")
        keep = dropout_keep_mask(rng, data.shape, p, pre.dtype)
        data *= keep
        deriv = deriv * keep

    def backward(grad, a=x, w=weight, b=bias, d=deriv):
        grad_pre = grad * d
        if a.requires_grad:
            a._accumulate(grad_pre @ w.data.T, owned=True)
        if w.requires_grad:
            w._accumulate(a.data.T @ grad_pre, owned=True)
        if b is not None and b.requires_grad:
            g = _unbroadcast(grad_pre, b.data.shape)
            b._accumulate(g, owned=g is not grad_pre)

    parents = (x, weight) if bias is None else (x, weight, bias)
    return Tensor._make(data, parents, backward)


def concat(tensors, axis=0):
    """Concatenate tensors along ``axis`` with gradient support."""
    tensors = list(tensors)
    if len(tensors) == 1:
        return tensors[0]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad, parts=tensors, offs=offsets, ax=axis):
        for tensor, start, stop in zip(parts, offs[:-1], offs[1:]):
            if tensor.requires_grad:
                slicer = [slice(None)] * grad.ndim
                slicer[ax] = slice(start, stop)
                tensor._accumulate(grad[tuple(slicer)])

    return Tensor._make(data, tuple(tensors), backward)


def maximum(a, b):
    """Elementwise maximum; gradient flows to the larger input (ties split)."""
    a = a if isinstance(a, Tensor) else Tensor(_as_array(a))
    b = b if isinstance(b, Tensor) else Tensor(_as_array(b))
    data = np.maximum(a.data, b.data)
    a_wins = a.data > b.data
    tie = a.data == b.data

    def backward(grad, x=a, y=b, aw=a_wins, t=tie):
        ga = grad * (aw + 0.5 * t)
        gb = grad * (~aw & ~t) + grad * 0.5 * t
        if x.requires_grad:
            x._accumulate(_unbroadcast(ga, x.data.shape), owned=True)
        if y.requires_grad:
            y._accumulate(_unbroadcast(gb, y.data.shape), owned=True)

    return Tensor._make(data, (a, b), backward)


def segment_sum(source, index, num_segments, out=None):
    """``out[j] = sum_{i: index[i]=j} source[i]`` on plain numpy arrays.

    Non-decreasing indices (how the batcher emits edges: grouped by parent)
    take a ``reduceat`` over the runs of equal values, which accumulates
    each segment's rows in the same sequential order as ``np.add.at`` — the
    result is identical without the per-element dispatch cost of ``at``.
    Unsorted indices fall back to ``np.add.at``.  ``out`` (zero-filled by
    the caller, ``num_segments`` rows) avoids the output allocation.
    """
    if out is None:
        out = np.zeros((num_segments,) + source.shape[1:], dtype=source.dtype)
    n = len(index)
    if not n:
        return out
    if n == 1:
        out[index[0]] = source[0]
        return out
    change = np.empty(n, dtype=bool)
    change[0] = True
    np.not_equal(index[1:], index[:-1], out=change[1:])
    if bool((index[1:] >= index[:-1]).all()):
        starts = np.flatnonzero(change)
        out[index[starts]] = np.add.reduceat(source, starts, axis=0)
    else:
        np.add.at(out, index, source)
    return out


def scatter_sum(source, index, num_segments):
    """Sum rows of ``source`` into ``num_segments`` buckets given by ``index``.

    The workhorse of bottom-up message passing: child hidden states are
    scattered into their parents' slots. ``out[j] = sum_{i: index[i]=j} src[i]``.
    """
    index = np.asarray(index, dtype=np.int64)
    if index.ndim != 1 or len(index) != len(source.data):
        raise ValueError("index must be 1-D and match the number of source rows")
    data = segment_sum(source.data, index, num_segments)

    def backward(grad, src=source, idx=index):
        if src.requires_grad:
            src._accumulate(grad[idx], owned=True)

    return Tensor._make(data, (source,), backward)


class _FlatGroup:
    """One dtype's contiguous storage inside a :class:`FlatParameterSpace`."""

    __slots__ = ("dtype", "data", "grad", "params", "data_views",
                 "grad_views", "slices")

    def __init__(self, dtype, params):
        self.dtype = dtype
        self.params = params
        total = sum(p.data.size for p in params)
        self.data = np.empty(total, dtype=dtype)
        self.grad = np.zeros(total, dtype=dtype)
        self.data_views, self.grad_views, self.slices = [], [], []
        offset = 0
        for param in params:
            size = param.data.size
            shape = param.data.shape
            data_view = self.data[offset:offset + size].reshape(shape)
            grad_view = self.grad[offset:offset + size].reshape(shape)
            np.copyto(data_view, param.data)
            had_grad = param.grad is not None
            if had_grad:
                np.copyto(grad_view, param.grad)
            param.data = data_view
            param._grad_view = grad_view
            param.grad = grad_view if had_grad else None
            self.data_views.append(data_view)
            self.grad_views.append(grad_view)
            self.slices.append((offset, offset + size))
            offset += size

    def bound(self):
        """True while every parameter's ``data`` is still our view."""
        return all(p.data is v for p, v in zip(self.params, self.data_views))

    def grads_complete(self):
        """True when every parameter's grad was accumulated into our buffer."""
        return all(p.grad is v for p, v in zip(self.params, self.grad_views))


class FlatParameterSpace:
    """All of a model's parameters as views into per-dtype flat buffers.

    Flattening copies each parameter's current values into one contiguous
    buffer per dtype and rebinds ``param.data`` (and the gradient
    accumulation target, via ``param._grad_view``) to views of it.  The
    whole model can then be snapshotted, restored, or stepped by an
    optimizer with a constant number of vectorized ops, independent of the
    parameter count.

    Anything that replaces a parameter's ``data`` array wholesale
    (``Module.to`` with a new dtype, ``load_state_dict``) silently unbinds
    the views; :meth:`bound` detects that and :meth:`rebind` re-flattens —
    optimizers check once per step, so external mutation stays correct, just
    off the fast path for that step.
    """

    def __init__(self, parameters):
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("cannot flatten zero parameters")
        self.groups = []
        self._flatten()

    def _flatten(self):
        by_dtype = {}
        for param in self.parameters:
            by_dtype.setdefault(param.data.dtype, []).append(param)
        self.groups = [_FlatGroup(dtype, params)
                       for dtype, params in by_dtype.items()]

    def bound(self):
        return all(group.bound() for group in self.groups)

    def rebind(self):
        """Re-flatten after external rebinding of ``param.data`` arrays.

        Current parameter values (and any pending grads) are preserved; the
        parameters simply move into fresh flat buffers.
        """
        self._flatten()

    def num_values(self):
        return sum(group.data.size for group in self.groups)

    def snapshot(self):
        """One contiguous copy per dtype — the flat early-stopping snapshot."""
        return [group.data.copy() for group in self.groups]

    def restore(self, snapshots):
        """Write a :meth:`snapshot` back into the parameters (in place)."""
        if len(snapshots) != len(self.groups):
            raise ValueError("snapshot does not match this parameter space")
        if not self.bound():
            self.rebind()
        for group, saved in zip(self.groups, snapshots):
            np.copyto(group.data, saved)
