"""Loss functions and error metrics for cost models.

The paper trains all models with the Q-error loss ``max(c/chat, chat/c)``
(Section 3.3).  Our models predict *log* runtimes for numerical stability, so
the loss is computed as ``exp(|pred_log - true_log|)`` (identical value,
well-behaved gradients), with an optional cap that keeps early-training
outliers from exploding the gradient.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor, maximum

__all__ = ["q_error", "q_error_metrics", "QErrorLoss", "mse_loss", "huber_loss"]


def q_error(predicted, actual, eps=1e-9):
    """Vectorized Q-error metric ``max(actual/pred, pred/actual)`` (numpy).

    Both arguments are runtimes in *linear* space (e.g. milliseconds).  Values
    are floored at ``eps`` to avoid division by zero; the result is always
    >= 1.
    """
    predicted = np.maximum(np.asarray(predicted, dtype=np.float64), eps)
    actual = np.maximum(np.asarray(actual, dtype=np.float64), eps)
    return np.maximum(predicted / actual, actual / predicted)


def q_error_metrics(predicted, actual):
    """Summary statistics used throughout the paper's evaluation."""
    errors = q_error(predicted, actual)
    return {
        "median": float(np.median(errors)),
        "mean": float(np.mean(errors)),
        "p90": float(np.percentile(errors, 90)),
        "p95": float(np.percentile(errors, 95)),
        "p99": float(np.percentile(errors, 99)),
        "max": float(np.max(errors)),
        "count": int(errors.size),
    }


class QErrorLoss:
    """Differentiable Q-error loss over log-space predictions.

    ``loss = mean(max(exp(p - t), exp(t - p)))`` where ``p``/``t`` are
    predicted/true log-runtimes. Differences are clamped at ``log_cap`` so a
    single terrible prediction cannot produce an overflowing gradient.
    """

    def __init__(self, log_cap=np.log(1e4)):
        self.log_cap = float(log_cap)

    def __call__(self, pred_log, true_log):
        if not isinstance(true_log, Tensor):
            true_log = Tensor(np.asarray(true_log, dtype=np.float64))
        diff = pred_log - true_log
        diff = diff.clamp(-self.log_cap, self.log_cap)
        q = maximum(diff.exp(), (-diff).exp())
        return q.mean()


def mse_loss(pred, target):
    if not isinstance(target, Tensor):
        target = Tensor(np.asarray(target, dtype=np.float64))
    diff = pred - target
    return (diff * diff).mean()


def huber_loss(pred, target, delta=1.0):
    """Huber loss, occasionally useful for pre-training warmup."""
    if not isinstance(target, Tensor):
        target = Tensor(np.asarray(target, dtype=np.float64))
    diff = (pred - target).abs()
    clipped = diff.clamp(0.0, delta)
    # 0.5*c^2 + delta*(d - c): quadratic inside delta, linear outside.
    return (clipped * clipped * 0.5 + (diff - clipped) * delta).mean()
