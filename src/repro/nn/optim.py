"""Optimizers for :mod:`repro.nn` models."""

from __future__ import annotations

import numpy as np

__all__ = ["SGD", "Adam", "clip_grad_norm"]


def clip_grad_norm(parameters, max_norm):
    """Scale gradients in place so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm (useful for monitoring training stability).
    """
    parameters = [p for p in parameters if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad ** 2).sum()) for p in parameters)))
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        for param in parameters:
            param.grad *= scale
    return total


class Optimizer:
    def __init__(self, parameters):
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")

    def zero_grad(self):
        for param in self.parameters:
            param.grad = None

    def step(self):
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters, lr=1e-2, momentum=0.0, weight_decay=0.0):
        super().__init__(parameters)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self):
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.data -= self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba) — the optimizer used for all learned models here."""

    def __init__(self, parameters, lr=1e-3, betas=(0.9, 0.999), eps=1e-8,
                 weight_decay=0.0):
        super().__init__(parameters)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self):
        self._step += 1
        bias1 = 1.0 - self.beta1 ** self._step
        bias2 = 1.0 - self.beta2 ** self._step
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad ** 2
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
