"""Optimizers for :mod:`repro.nn` models.

The engine's :class:`Adam` is *flat*: constructing it moves all parameters
into a :class:`~repro.nn.tensor.FlatParameterSpace` (one contiguous buffer
per dtype, parameters become views), its moment state lives in matching
flat buffers, and a step is a constant number of vectorized ops over the
whole model instead of a per-parameter Python loop.  The per-parameter
implementation is preserved as :class:`Adam_reference` — an executable
specification the flat path must match bit-for-bit (asserted by the tier-1
tests); the same pairing exists for :func:`clip_grad_norm` /
:func:`clip_grad_norm_reference`.

Bit-identity details worth knowing:

* Every update op is elementwise, so running it over the concatenated
  buffer produces exactly the per-parameter results.
* The gradient norm is still accumulated per parameter (same ``vdot`` per
  slice, same Python-float summation order as the reference) — a single
  ``vdot`` over the flat buffer would change the floating-point reduction
  order.  Only the *scaling* is collapsed to one in-place multiply.
* A step in which some parameters received no gradient (a batch without
  some node type) falls back to a per-parameter walk over the flat views —
  the reference skips those parameters entirely, and decaying their moments
  anyway would diverge from it.
"""

from __future__ import annotations

import numpy as np

from .. import perfstats
from .tensor import FlatParameterSpace

__all__ = ["SGD", "Adam", "Adam_reference", "clip_grad_norm",
           "clip_grad_norm_reference"]


def clip_grad_norm_reference(parameters, max_norm):
    """Per-parameter reference for :func:`clip_grad_norm` (executable spec).

    Scales gradients in place so their global L2 norm is at most
    ``max_norm``; returns the pre-clipping norm.
    """
    parameters = [p for p in parameters if p.grad is not None]
    total = float(np.sqrt(sum(float(np.vdot(p.grad, p.grad))
                              for p in parameters)))
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        for param in parameters:
            param.grad *= scale
    return total


def clip_grad_norm(parameters, max_norm):
    """Scale gradients in place so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm (useful for monitoring training stability).
    The norm itself is accumulated per parameter — bit-identical to
    :func:`clip_grad_norm_reference` — but gradients that together tile one
    flat buffer (parameters flattened by :class:`Adam` /
    :class:`~repro.nn.tensor.FlatParameterSpace`) are rescaled with a single
    in-place multiply on the buffer.
    """
    parameters = [p for p in parameters if p.grad is not None]
    total = float(np.sqrt(sum(float(np.vdot(p.grad, p.grad))
                              for p in parameters)))
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        by_base = {}
        for param in parameters:
            base = param.grad.base if isinstance(param.grad, np.ndarray) \
                else None
            by_base.setdefault(id(base) if base is not None else None,
                               (base, []))[1].append(param)
        for base, group in by_base.values():
            if base is not None and sum(p.grad.size for p in group) == base.size:
                # The group's views cover the flat buffer exactly: scaling
                # the buffer scales each gradient, elementwise-identical to
                # the per-parameter loop.
                base *= scale
                perfstats.increment("optim.flat_clip")
            else:
                for param in group:
                    param.grad *= scale
    return total


class Optimizer:
    def __init__(self, parameters):
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")

    def zero_grad(self):
        for param in self.parameters:
            param.grad = None

    def step(self):
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters, lr=1e-2, momentum=0.0, weight_decay=0.0):
        super().__init__(parameters)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self):
        for i, param in enumerate(self.parameters):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity = self._velocity[i]
                if velocity.dtype != param.data.dtype:
                    velocity = self._velocity[i] = velocity.astype(
                        param.data.dtype)
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.data -= self.lr * grad


class Adam_reference(Optimizer):
    """Per-parameter Adam (Kingma & Ba) — the executable reference spec.

    Optimizer state follows each parameter's dtype; state buffers are lazily
    (re)allocated so casting a model with ``Module.to`` after constructing
    the optimizer stays correct.  The step works in preallocated scratch
    buffers to avoid per-step temporaries.
    """

    def __init__(self, parameters, lr=1e-3, betas=(0.9, 0.999), eps=1e-8,
                 weight_decay=0.0):
        super().__init__(parameters)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._scratch = [np.empty_like(p.data) for p in self.parameters]

    def step(self):
        perfstats.increment("optim.reference_step")
        self._step += 1
        bias1 = 1.0 - self.beta1 ** self._step
        bias2 = 1.0 - self.beta2 ** self._step
        sqrt_bias2 = np.sqrt(bias2)
        for i, param in enumerate(self.parameters):
            if param.grad is None:
                continue
            dtype = param.data.dtype
            if self._m[i].dtype != dtype:
                self._m[i] = self._m[i].astype(dtype)
                self._v[i] = self._v[i].astype(dtype)
                self._scratch[i] = np.empty(param.data.shape, dtype=dtype)
            m, v, scratch = self._m[i], self._v[i], self._scratch[i]
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad ** 2
            # update = lr * m_hat / (sqrt(v_hat) + eps), computed in scratch:
            # sqrt(v_hat) = sqrt(v) / sqrt(bias2), m_hat = m / bias1.
            np.sqrt(v, out=scratch)
            scratch /= sqrt_bias2
            scratch += self.eps
            np.divide(m, scratch, out=scratch)
            scratch *= self.lr / bias1
            param.data -= scratch


class Adam(Optimizer):
    """Flat-parameter Adam: the whole model updated in ~8 vectorized ops.

    Construction flattens the parameters (see
    :class:`~repro.nn.tensor.FlatParameterSpace`); moments and scratch live
    in flat buffers aligned with the parameter buffer.  When every
    parameter's gradient was accumulated into the flat gradient buffer (the
    common case), the step runs whole-buffer ops; otherwise it walks the
    flat views per parameter, skipping missing gradients exactly like
    :class:`Adam_reference`.  Both paths are bit-identical to the reference.
    """

    def __init__(self, parameters, lr=1e-3, betas=(0.9, 0.999), eps=1e-8,
                 weight_decay=0.0):
        super().__init__(parameters)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self.space = FlatParameterSpace(self.parameters)
        self._alloc_state()

    def _alloc_state(self, old_state=None):
        """Flat m/v/scratch per group; preserves old moments across rebinds."""
        self._m, self._v, self._scratch, self._scratch2 = {}, {}, {}, {}
        for group in self.space.groups:
            m = np.zeros_like(group.data)
            v = np.zeros_like(group.data)
            if old_state is not None:
                for param, (start, stop) in zip(group.params, group.slices):
                    old = old_state.get(id(param))
                    if old is not None:
                        m[start:stop] = old[0].ravel()
                        v[start:stop] = old[1].ravel()
            self._m[id(group)] = m
            self._v[id(group)] = v
            self._scratch[id(group)] = np.empty_like(group.data)
            self._scratch2[id(group)] = (np.empty_like(group.data)
                                         if self.weight_decay else None)

    def _rebind(self):
        """Re-flatten after ``Module.to`` / ``load_state_dict`` rebound data.

        Matches the reference's lazy state handling: moments survive (cast
        to the parameter's new dtype by the flat copy).
        """
        old_state = {}
        for group in self.space.groups:
            m, v = self._m[id(group)], self._v[id(group)]
            for param, (start, stop) in zip(group.params, group.slices):
                shape = param.data.shape
                old_state[id(param)] = (m[start:stop].reshape(shape),
                                        v[start:stop].reshape(shape))
        self.space.rebind()
        self._alloc_state(old_state)

    def step(self):
        self._step += 1
        bias1 = 1.0 - self.beta1 ** self._step
        bias2 = 1.0 - self.beta2 ** self._step
        sqrt_bias2 = np.sqrt(bias2)
        if not self.space.bound():
            self._rebind()
        for group in self.space.groups:
            if group.grads_complete():
                self._step_flat(group, bias1, sqrt_bias2)
            else:
                self._step_partial(group, bias1, sqrt_bias2)

    def _step_flat(self, group, bias1, sqrt_bias2):
        """Whole-buffer update: elementwise-identical to the reference loop."""
        perfstats.increment("optim.flat_step")
        m, v = self._m[id(group)], self._v[id(group)]
        scratch = self._scratch[id(group)]
        grad = group.grad
        if self.weight_decay:
            g_eff = self._scratch2[id(group)]
            np.multiply(group.data, self.weight_decay, out=g_eff)
            g_eff += grad
            grad = g_eff
        m *= self.beta1
        np.multiply(grad, 1.0 - self.beta1, out=scratch)
        m += scratch
        v *= self.beta2
        np.multiply(grad, grad, out=scratch)
        scratch *= 1.0 - self.beta2
        v += scratch
        np.sqrt(v, out=scratch)
        scratch /= sqrt_bias2
        scratch += self.eps
        np.divide(m, scratch, out=scratch)
        scratch *= self.lr / bias1
        group.data -= scratch

    def _step_partial(self, group, bias1, sqrt_bias2):
        """Per-parameter walk over the flat views (some grads missing).

        Same op sequence as :class:`Adam_reference`, so parameters that do
        have gradients move identically while the others — moments included
        — stay untouched.
        """
        perfstats.increment("optim.partial_step")
        m_flat, v_flat = self._m[id(group)], self._v[id(group)]
        scratch_flat = self._scratch[id(group)]
        for param, (start, stop) in zip(group.params, group.slices):
            if param.grad is None:
                continue
            shape = param.data.shape
            m = m_flat[start:stop].reshape(shape)
            v = v_flat[start:stop].reshape(shape)
            scratch = scratch_flat[start:stop].reshape(shape)
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad ** 2
            np.sqrt(v, out=scratch)
            scratch /= sqrt_bias2
            scratch += self.eps
            np.divide(m, scratch, out=scratch)
            scratch *= self.lr / bias1
            param.data -= scratch
