"""Optimizers for :mod:`repro.nn` models.

Optimizer state follows each parameter's dtype (the engine trains in
float32 by default, float64 on request); state buffers are lazily
(re)allocated so casting a model with ``Module.to`` after constructing the
optimizer stays correct.  The Adam step works in preallocated scratch
buffers to avoid per-step temporaries in the training hot loop.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SGD", "Adam", "clip_grad_norm"]


def clip_grad_norm(parameters, max_norm):
    """Scale gradients in place so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm (useful for monitoring training stability).
    """
    parameters = [p for p in parameters if p.grad is not None]
    total = float(np.sqrt(sum(float(np.vdot(p.grad, p.grad))
                              for p in parameters)))
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        for param in parameters:
            param.grad *= scale
    return total


class Optimizer:
    def __init__(self, parameters):
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")

    def zero_grad(self):
        for param in self.parameters:
            param.grad = None

    def step(self):
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters, lr=1e-2, momentum=0.0, weight_decay=0.0):
        super().__init__(parameters)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self):
        for i, param in enumerate(self.parameters):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity = self._velocity[i]
                if velocity.dtype != param.data.dtype:
                    velocity = self._velocity[i] = velocity.astype(
                        param.data.dtype)
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.data -= self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba) — the optimizer used for all learned models here."""

    def __init__(self, parameters, lr=1e-3, betas=(0.9, 0.999), eps=1e-8,
                 weight_decay=0.0):
        super().__init__(parameters)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._scratch = [np.empty_like(p.data) for p in self.parameters]

    def step(self):
        self._step += 1
        bias1 = 1.0 - self.beta1 ** self._step
        bias2 = 1.0 - self.beta2 ** self._step
        sqrt_bias2 = np.sqrt(bias2)
        for i, param in enumerate(self.parameters):
            if param.grad is None:
                continue
            dtype = param.data.dtype
            if self._m[i].dtype != dtype:
                self._m[i] = self._m[i].astype(dtype)
                self._v[i] = self._v[i].astype(dtype)
                self._scratch[i] = np.empty(param.data.shape, dtype=dtype)
            m, v, scratch = self._m[i], self._v[i], self._scratch[i]
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad ** 2
            # update = lr * m_hat / (sqrt(v_hat) + eps), computed in scratch:
            # sqrt(v_hat) = sqrt(v) / sqrt(bias2), m_hat = m / bias1.
            np.sqrt(v, out=scratch)
            scratch /= sqrt_bias2
            scratch += self.eps
            np.divide(m, scratch, out=scratch)
            scratch *= self.lr / bias1
            param.data -= scratch
