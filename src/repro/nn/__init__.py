"""Minimal neural-network framework (numpy autograd) used by all learned models.

This package replaces PyTorch in the reproduction: it provides a
reverse-mode autograd :class:`~repro.nn.tensor.Tensor`, standard layers,
optimizers and the Q-error loss from the paper.
"""

from .tensor import (Tensor, concat, maximum, scatter_sum, linear,
                     fused_act_dropout, linear_act_dropout, segment_sum,
                     row_stable_matmul, FlatParameterSpace, no_grad,
                     is_grad_enabled, set_default_dtype, get_default_dtype,
                     default_dtype)
from .modules import (Module, Linear, ReLU, LeakyReLU, Tanh, Sigmoid,
                      Dropout, Sequential, MLP)
from .optim import (SGD, Adam, Adam_reference, clip_grad_norm,
                    clip_grad_norm_reference)
from .losses import q_error, q_error_metrics, QErrorLoss, mse_loss, huber_loss
from .serialize import save_state, load_state

__all__ = [
    "Tensor", "concat", "maximum", "scatter_sum", "linear",
    "fused_act_dropout", "linear_act_dropout", "segment_sum",
    "row_stable_matmul", "FlatParameterSpace",
    "no_grad", "is_grad_enabled",
    "set_default_dtype", "get_default_dtype", "default_dtype",
    "Module", "Linear", "ReLU", "LeakyReLU", "Tanh", "Sigmoid",
    "Dropout", "Sequential", "MLP",
    "SGD", "Adam", "Adam_reference", "clip_grad_norm",
    "clip_grad_norm_reference",
    "q_error", "q_error_metrics", "QErrorLoss", "mse_loss", "huber_loss",
    "save_state", "load_state",
]
