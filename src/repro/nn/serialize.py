"""Model state persistence (``.npz`` based).

Arrays are stored with their dtype intact: a model trained in float32 loads
back as float32 (and reproduces bit-identical predictions), while float64
checkpoints stay float64.  ``Module.load_state_dict`` adopts the stored
dtype, so the precision policy travels with the checkpoint.
"""

from __future__ import annotations

import numpy as np

__all__ = ["save_state", "load_state"]


def save_state(path, state_dict, metadata=None):
    """Save a ``state_dict`` (name -> ndarray) plus optional string metadata.

    Array dtypes are preserved exactly (no silent float64 upcast).
    """
    payload = {f"param::{name}": np.asarray(values)
               for name, values in state_dict.items()}
    if metadata:
        for key, value in metadata.items():
            payload[f"meta::{key}"] = np.asarray(str(value))
    np.savez(path, **payload)


def load_state(path):
    """Load ``(state_dict, metadata)`` previously written by :func:`save_state`."""
    archive = np.load(path, allow_pickle=False)
    state, metadata = {}, {}
    for key in archive.files:
        if key.startswith("param::"):
            state[key[len("param::"):]] = archive[key]
        elif key.startswith("meta::"):
            metadata[key[len("meta::"):]] = str(archive[key])
    return state, metadata
