"""Distributed cloud-DW extension of zero-shot cost models (§5.1)."""

from .cluster import ClusterConfig, DEFAULT_CLUSTER
from .planner import plan_distributed_query, distributed_storage_formats
from .runtime_model import simulate_distributed_runtime_ms
from .trace import generate_distributed_trace

__all__ = [
    "ClusterConfig", "DEFAULT_CLUSTER",
    "plan_distributed_query", "distributed_storage_formats",
    "simulate_distributed_runtime_ms", "generate_distributed_trace",
]
