"""Distributed query planning (§5.1, Figure 4).

Transforms the logical query into a distributed physical plan for a columnar
cloud data warehouse:

* base accesses are **ColumnarScan** operators that read only the referenced
  columns (scanned-column accounting in widths, pages, and featurization),
* every join's build side is shipped over the network: **Broadcast** when
  the build input is small, **Repartition** (both inputs hash-partitioned
  on the join key) otherwise,
* a final **Gather** returns results to the coordinator.
"""

from __future__ import annotations



from ..cardest.traditional import TraditionalEstimator
from ..optimizer import PlanNode, annotate_costs
from ..optimizer.planner import _greedy_join_order, _join_edges_inside
from ..sql import Query
from .cluster import ClusterConfig, DEFAULT_CLUSTER

__all__ = ["plan_distributed_query", "distributed_storage_formats"]


def distributed_storage_formats(db):
    """All tables are column-store in the cloud DW (table-node feature)."""
    return {table: "column" for table in db.schema.table_names}


def _scanned_columns(db, query, table):
    needed = set(query.referenced_columns(table)) | set(query.filter_columns(table))
    if not needed:
        needed = {list(db.table(table).columns)[0]}
    return tuple(sorted(needed))


def _columnar_scan(db, query, table, estimator, cluster):
    columns = _scanned_columns(db, query, table)
    width = sum(db.column_stats(table, c).width for c in columns)
    predicate = query.filters.get(table)
    return PlanNode("ColumnarScan", table=table, filter_predicate=predicate,
                    scanned_columns=columns, storage_format="column",
                    est_rows=max(estimator.scan_rows(db, table, predicate), 1.0),
                    width=width, workers=cluster.n_nodes)


def _shuffle(node, kind, cluster):
    return PlanNode(kind, children=[node], est_rows=node.est_rows,
                    width=node.width, workers=cluster.n_nodes)


def plan_distributed_query(db, query: Query, cluster: ClusterConfig = None,
                           estimator=None) -> PlanNode:
    """Plan a query for the simulated distributed cloud data warehouse."""
    cluster = cluster or DEFAULT_CLUSTER
    estimator = estimator or TraditionalEstimator()

    if len(query.tables) == 1:
        node = _columnar_scan(db, query, query.tables[0], estimator, cluster)
    else:
        order = _greedy_join_order(db, query, estimator)
        node = _columnar_scan(db, query, order[0], estimator, cluster)
        joined = [order[0]]
        for table in order[1:]:
            right = _columnar_scan(db, query, table, estimator, cluster)
            subset = set(joined) | {table}
            edges = _join_edges_inside(query, subset)
            new_edges = [e for e in edges if table in e.tables()]
            join_edge = new_edges[0] if new_edges else None
            out_rows = estimator.join_rows(db, subset, edges, query.filters)

            # Probe = bigger input, build = smaller (as in the local planner).
            if right.est_rows <= node.est_rows:
                probe, build = node, right
            else:
                probe, build = right, node
            build_bytes = build.est_rows * max(build.width, 8.0)
            if build_bytes <= cluster.broadcast_threshold_bytes:
                build = _shuffle(build, "Broadcast", cluster)
            else:
                build = _shuffle(build, "Repartition", cluster)
                probe = _shuffle(probe, "Repartition", cluster)
            node = PlanNode("HashJoin", children=[probe, build], join=join_edge,
                            est_rows=max(out_rows, 1.0),
                            width=probe.width + build.width,
                            workers=cluster.n_nodes)
            joined.append(table)

    if query.group_by:
        groups = 1.0
        for table, column in query.group_by:
            groups *= max(db.column_stats(table, column).ndistinct, 1)
        agg = PlanNode("HashAggregate", children=[node],
                       aggregates=tuple(query.aggregates),
                       group_by=tuple(query.group_by),
                       est_rows=max(1.0, min(groups, node.est_rows)),
                       width=8.0 * (len(query.aggregates) + len(query.group_by)),
                       workers=cluster.n_nodes)
    else:
        agg = PlanNode("Aggregate", children=[node],
                       aggregates=tuple(query.aggregates), est_rows=1.0,
                       width=8.0 * len(query.aggregates),
                       workers=cluster.n_nodes)
    node = agg
    if query.order_by:
        node = PlanNode("Sort", children=[node], sort_keys=tuple(query.order_by),
                        est_rows=node.est_rows, width=node.width)
    root = PlanNode("Gather", children=[node], est_rows=node.est_rows,
                    width=node.width, workers=cluster.n_nodes)
    annotate_costs(db, root)
    return root
