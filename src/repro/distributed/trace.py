"""Trace generation on the distributed cluster simulator."""

from __future__ import annotations

from ..executor import execute_plan
from ..workloads import Trace, TraceRecord, TIMEOUT_MS
from .cluster import DEFAULT_CLUSTER
from .planner import plan_distributed_query
from .runtime_model import simulate_distributed_runtime_ms

__all__ = ["generate_distributed_trace"]


def generate_distributed_trace(db, queries, cluster=None, hardware=None,
                               seed=0, timeout_ms=TIMEOUT_MS):
    """Plan, execute and time queries on the simulated cloud DW."""
    cluster = cluster or DEFAULT_CLUSTER
    trace = Trace(db_name=db.name)
    for query in queries:
        plan = plan_distributed_query(db, query, cluster)
        execute_plan(db, plan)
        runtime = simulate_distributed_runtime_ms(db, plan, cluster,
                                                  hardware=hardware, seed=seed)
        if runtime > timeout_ms:
            trace.excluded_timeouts += 1
            continue
        trace.records.append(TraceRecord(query=query, plan=plan,
                                         runtime_ms=runtime, db_name=db.name))
    return trace
