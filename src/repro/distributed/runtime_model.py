"""Runtime simulation for the distributed cloud DW (§5.1, Table 3).

Per-node compute costs reuse the single-node operator model on the cloud
node profile, scaled down by the cluster's parallel efficiency; shuffle
operators pay network transfer (broadcast ships ``n_nodes`` copies) plus a
fixed coordination latency.  Like the local simulator, the model is noisy
and non-linear, and the cloud optimizer's abstract costs cannot capture the
shuffle/startup effects — reproducing the Table 3 gap.
"""

from __future__ import annotations

import numpy as np

from ..executor import CLOUD_DW_NODE, node_time_us, plan_signature
from .cluster import ClusterConfig, DEFAULT_CLUSTER

__all__ = ["simulate_distributed_runtime_ms"]


def _shuffle_us(node, cluster):
    rows = max(node.true_rows if node.true_rows is not None else node.est_rows,
               0.0)
    transfer_bytes = rows * max(node.width, 8.0)
    if node.op_name == "Broadcast":
        transfer_bytes *= cluster.n_nodes
    return (cluster.shuffle_latency_us
            + transfer_bytes / cluster.network_bytes_per_us)


def simulate_distributed_runtime_ms(db, root, cluster: ClusterConfig = None,
                                    hardware=None, seed=0):
    """Simulated latency of an executed distributed plan in milliseconds."""
    cluster = cluster or DEFAULT_CLUSTER
    hw = hardware or CLOUD_DW_NODE
    speedup = cluster.n_nodes ** cluster.scale_efficiency

    total_us = hw.query_overhead_us + cluster.coordinator_overhead_us
    for node in root.iter_nodes():
        if node.op_name in ("Broadcast", "Repartition"):
            total_us += _shuffle_us(node, cluster)
        elif node.op_name == "Gather":
            rows = max(node.true_rows or 0.0, 0.0)
            total_us += rows * max(node.width, 8.0) / cluster.network_bytes_per_us
        else:
            # Compute operators run partitioned across the cluster.  Workers
            # encode cluster fan-out already; avoid double counting by
            # costing the operator serially, then dividing by the cluster
            # speedup.
            saved = node.workers
            node.workers = 1
            try:
                total_us += node_time_us(db, node, hw) / speedup
            finally:
                node.workers = saved

    rng = np.random.default_rng((plan_signature(db.name, root) + seed + 77)
                                % (2 ** 63))
    noise = float(np.exp(rng.normal(0.0, hw.noise_sigma)))
    return total_us * noise / 1000.0
