"""Cluster configuration for the distributed cloud DW simulator (§5.1)."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ClusterConfig", "DEFAULT_CLUSTER"]


@dataclass(frozen=True)
class ClusterConfig:
    """A shared-nothing cluster of identical compute nodes."""

    n_nodes: int = 8
    network_bytes_per_us: float = 1200.0   # ~ 9.6 Gbit/s effective
    shuffle_latency_us: float = 350.0      # per-shuffle fixed round-trip
    coordinator_overhead_us: float = 2500.0
    scale_efficiency: float = 0.9          # speedup = n_nodes ** efficiency
    broadcast_threshold_bytes: float = 256 * 1024

    def __post_init__(self):
        if self.n_nodes < 1:
            raise ValueError("cluster needs at least one node")


DEFAULT_CLUSTER = ClusterConfig()
