"""The 20-database benchmark of Section 6.

Each database carries the name used in the paper's Figure 5 and a
characteristic profile: real-world-flavoured databases get high complexity
(skew, correlations, NULLs, irregular layouts) while the classic synthetic
benchmarks (SSB, TPC-H) are star/snowflake schemas with low complexity —
which is why the optimizer baseline is relatively accurate on them (the
paper observes this for the star-schema Airline database).

``rows`` is the fact-table size relative to the suite's base size, so the
databases "vary largely in the number of tables, columns and foreign-key
relationships" as well as in size.
"""

from __future__ import annotations

from .generator import generate_database
from .schema_gen import random_database_spec

__all__ = ["BENCHMARK_PROFILES", "BENCHMARK_NAMES", "benchmark_spec",
           "make_benchmark_database", "make_benchmark_databases"]

# name -> (layout, n_tables, complexity, rows multiplier)
BENCHMARK_PROFILES = {
    "accidents": ("random", 6, 0.80, 1.2),
    "airline": ("star", 5, 0.25, 1.0),
    "baseball": ("random", 8, 0.70, 0.9),
    "basketball": ("random", 7, 0.70, 0.7),
    "carcinogenesis": ("chain", 4, 0.60, 0.5),
    "consumer": ("star", 4, 0.50, 0.8),
    "credit": ("snowflake", 6, 0.60, 0.9),
    "employee": ("chain", 5, 0.65, 1.1),
    "fhnk": ("random", 5, 0.75, 1.0),
    "financial": ("snowflake", 7, 0.70, 1.0),
    "geneea": ("random", 6, 0.80, 0.6),
    "genome": ("chain", 5, 0.75, 1.4),
    "hepatitis": ("random", 4, 0.60, 0.4),
    # IMDB is modelled with the "random" layout: like the real schema, hub
    # tables (title) are referenced by several fact-like tables, so JOB-style
    # queries expand M:N through them.
    "imdb": ("random", 8, 0.85, 1.5),
    "movielens": ("star", 6, 0.70, 1.2),
    "ssb": ("star", 5, 0.20, 1.3),
    "seznam": ("random", 5, 0.75, 0.8),
    "tpc_h": ("snowflake", 8, 0.25, 1.3),
    "tournament": ("random", 6, 0.65, 0.7),
    "walmart": ("star", 5, 0.70, 1.0),
}

BENCHMARK_NAMES = list(BENCHMARK_PROFILES)


def benchmark_spec(name, base_rows=5000):
    """The :class:`DatabaseSpec` for one named benchmark database."""
    if name not in BENCHMARK_PROFILES:
        raise KeyError(f"unknown benchmark database {name!r}; "
                       f"choose from {BENCHMARK_NAMES}")
    layout, n_tables, complexity, rows = BENCHMARK_PROFILES[name]
    seed = 10_000 + BENCHMARK_NAMES.index(name)
    return random_database_spec(
        name, seed=seed, layout=layout, n_tables=n_tables,
        complexity=complexity, base_rows=max(50, int(base_rows * rows)))


def make_benchmark_database(name, base_rows=5000):
    return generate_database(benchmark_spec(name, base_rows=base_rows))


def make_benchmark_databases(base_rows=5000, subset=None):
    """Generate the benchmark databases (all 20, or a ``subset`` of names)."""
    names = subset if subset is not None else BENCHMARK_NAMES
    return {name: make_benchmark_database(name, base_rows=base_rows)
            for name in names}
