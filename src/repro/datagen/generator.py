"""Materialize :class:`DatabaseSpec` specifications into databases."""

from __future__ import annotations

import numpy as np

from ..storage import Column, Database, DataType, ForeignKey, NULL_CODE, Schema, Table
from .distributions import (apply_nulls, correlated_from, make_vocabulary,
                            mixture_floats, sorted_fraction, zipf_codes)
from .schema_gen import ColumnSpec, DatabaseSpec, TableSpec

__all__ = ["generate_database", "grow_database"]


def _generate_payload_column(rng, spec: ColumnSpec, n_rows, generated):
    """Generate one payload column according to its spec."""
    if spec.kind == "int_zipf":
        offset = int(rng.integers(0, 1000))
        codes = zipf_codes(rng, n_rows, spec.n_distinct, spec.skew)
        values = (codes + offset).astype(np.float64)
        values = sorted_fraction(rng, values, spec.sorted_frac)
        values = apply_nulls(rng, values, spec.null_frac, np.nan)
        return Column(spec.name, DataType.INT, values)

    if spec.kind == "float_mix":
        values = mixture_floats(rng, n_rows, n_modes=spec.n_modes)
        values = apply_nulls(rng, values, spec.null_frac, np.nan)
        return Column(spec.name, DataType.FLOAT, values)

    if spec.kind == "int_correlated":
        base = generated[spec.correlates_with].values
        base_filled = np.where(np.isnan(base), np.nanmean(base), base) \
            if np.isnan(base).any() else base
        raw = correlated_from(rng, base_filled, spec.correlation_strength)
        # Discretize into n_distinct integer buckets.
        lo, hi = raw.min(), raw.max()
        span = (hi - lo) or 1.0
        values = np.floor((raw - lo) / span * (spec.n_distinct - 1)).astype(np.float64)
        values = apply_nulls(rng, values, spec.null_frac, np.nan)
        return Column(spec.name, DataType.INT, values)

    if spec.kind in ("categorical", "string"):
        vocab = make_vocabulary(rng, spec.n_distinct)
        codes = zipf_codes(rng, n_rows, spec.n_distinct, spec.skew).astype(np.int64)
        codes = apply_nulls(rng, codes, spec.null_frac, NULL_CODE)
        dtype = DataType.CATEGORICAL if spec.kind == "categorical" else DataType.STRING
        return Column(spec.name, dtype, codes, dictionary=vocab)

    raise ValueError(f"unknown column kind {spec.kind!r}")


def _parent_popularity(base_seed, parent_index, n_parent):
    """Shared popularity permutation of one parent table's rows.

    Children referencing this parent map zipf frequency ranks through the
    same permutation, so the popular parent rows are popular in *every*
    child table (correlated fanouts -> realistic M:N join expansion).
    """
    rng = np.random.default_rng([base_seed, 999_983, parent_index])
    return rng.permutation(n_parent)


def _generate_table(base_seed, table_index, spec: TableSpec, parent_rows,
                    table_indexes):
    """Generate one table: PK, FK columns referencing parents, payload.

    Every column draws from its own RNG stream seeded by (database seed,
    table index, column index).  Row counts therefore do not perturb *other*
    columns' streams, so scaling a spec up (``grow_database``, Fig. 8)
    yields identically distributed data.
    """
    columns = [Column("id", DataType.INT, np.arange(spec.n_rows, dtype=np.float64))]
    for fk_index, (fk_column, parent) in enumerate(spec.parents):
        rng = np.random.default_rng([base_seed, table_index, 1000 + fk_index])
        n_parent = parent_rows[parent]
        popularity = _parent_popularity(base_seed, table_indexes[parent],
                                        n_parent)
        refs = zipf_codes(rng, spec.n_rows, n_parent, spec.fk_skew,
                          permutation=popularity).astype(np.float64)
        refs = apply_nulls(rng, refs, spec.fk_null_frac, np.nan)
        columns.append(Column(fk_column, DataType.INT, refs))
    generated = {}
    for col_index, column_spec in enumerate(spec.columns):
        rng = np.random.default_rng([base_seed, table_index, col_index])
        column = _generate_payload_column(rng, column_spec, spec.n_rows,
                                          generated)
        generated[column.name] = column
        columns.append(column)
    return Table(spec.name, columns)


def generate_database(spec: DatabaseSpec) -> Database:
    """Generate the full database for ``spec`` (deterministic in the seed)."""
    parent_rows = {t.name: t.n_rows for t in spec.tables}
    table_indexes = {t.name: i for i, t in enumerate(spec.tables)}
    tables = [_generate_table(spec.seed, index, table_spec, parent_rows,
                              table_indexes)
              for index, table_spec in enumerate(spec.tables)]
    foreign_keys = [
        ForeignKey(t.name, fk_column, parent, "id")
        for t in spec.tables for fk_column, parent in t.parents
    ]
    schema = Schema([t.name for t in spec.tables], foreign_keys)
    return Database(spec.name, schema, tables, genspec=spec)


def grow_database(db: Database, factor) -> Database:
    """The database after updates grew it to ``factor`` times its size.

    Regenerates from the stored genspec with scaled row counts — i.e. the new
    rows follow the same distributions as the old ones (bulk inserts of
    similar data), which is the Fig. 8 update scenario.  Indexes present on
    the original database are recreated.
    """
    if db.genspec is None:
        raise ValueError(f"database {db.name!r} has no genspec; cannot grow")
    grown = generate_database(db.genspec.scaled(factor))
    grown.name = db.name
    for table_name, column_name in db.indexes:
        grown.create_index(table_name, column_name)
    return grown
