"""Synthetic database generation: distributions, schema specs, and the
20-database benchmark of Section 6."""

from .distributions import (zipf_codes, mixture_floats, correlated_from,
                            make_vocabulary, apply_nulls, sorted_fraction)
from .schema_gen import ColumnSpec, TableSpec, DatabaseSpec, random_database_spec
from .generator import generate_database, grow_database
from .benchmark20 import (BENCHMARK_PROFILES, BENCHMARK_NAMES, benchmark_spec,
                          make_benchmark_database, make_benchmark_databases)

__all__ = [
    "zipf_codes", "mixture_floats", "correlated_from", "make_vocabulary",
    "apply_nulls", "sorted_fraction",
    "ColumnSpec", "TableSpec", "DatabaseSpec", "random_database_spec",
    "generate_database", "grow_database",
    "BENCHMARK_PROFILES", "BENCHMARK_NAMES", "benchmark_spec",
    "make_benchmark_database", "make_benchmark_databases",
]
