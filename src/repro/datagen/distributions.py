"""Value distributions for synthetic table data.

The benchmark's point (Section 6) is that *real-world* data has skew,
correlations and NULLs that synthetic benchmarks lack.  We therefore provide
a family of distributions — uniform, zipf, normal mixtures, correlated
derivations — so each generated database can mix "hard" (skewed/correlated)
and "easy" (uniform) characteristics.
"""

from __future__ import annotations

import numpy as np

__all__ = ["zipf_codes", "mixture_floats", "correlated_from", "make_vocabulary",
           "apply_nulls", "sorted_fraction"]

_SYLLABLES = ["an", "ba", "co", "den", "el", "fir", "gu", "han", "il", "jo",
              "ka", "lo", "mi", "nor", "os", "pre", "qua", "ri", "sa", "tur",
              "ul", "ver", "wa", "xe", "yo", "zen"]
# Pre-converted once: `rng.choice` re-builds an array from a list argument
# on every call, which dominated vocabulary generation.
_SYLLABLE_ARRAY = np.array(_SYLLABLES)


def zipf_codes(rng, n_values, n_distinct, skew, permutation=None):
    """Zipf-ish distributed codes in ``[0, n_distinct)``.

    ``skew=0`` degenerates to uniform; larger values concentrate mass on few
    codes (realistic categorical columns: cities, genres, status flags).

    ``permutation`` fixes which code identity gets which frequency rank.
    Foreign-key generation passes the *parent table's* shared popularity
    permutation so that all children of one parent are hot on the same
    parent rows — the correlated fanouts that make real M:N joins explode.
    """
    if n_distinct <= 0:
        raise ValueError("n_distinct must be positive")
    ranks = np.arange(1, n_distinct + 1, dtype=np.float64)
    weights = ranks ** (-float(skew)) if skew > 0 else np.ones(n_distinct)
    weights /= weights.sum()
    if permutation is None:
        # Shuffle the code identity so code 0 is not always the most
        # frequent.  Drawn *before* the row-dependent draws: the value
        # distribution is then independent of n_values, which keeps grown
        # databases (Fig. 8) identically distributed.
        permutation = rng.permutation(n_distinct)
    else:
        permutation = np.asarray(permutation)
        if len(permutation) != n_distinct:
            raise ValueError("permutation length must equal n_distinct")
    codes = rng.choice(n_distinct, size=n_values, p=weights)
    return permutation[codes]


def mixture_floats(rng, n_values, n_modes=2, spread=100.0):
    """Mixture of Gaussians: multi-modal numeric columns (prices, runtimes)."""
    centers = rng.uniform(0.0, spread, size=max(1, n_modes))
    scales = rng.uniform(spread / 50.0, spread / 8.0, size=max(1, n_modes))
    which = rng.integers(0, max(1, n_modes), size=n_values)
    return rng.normal(centers[which], scales[which])


def correlated_from(rng, base_values, strength, noise_scale=1.0):
    """A column correlated with ``base_values``.

    ``strength`` in [0, 1]: 1 is a deterministic function of the base column,
    0 is independent noise.  These cross-column correlations are exactly what
    breaks the traditional optimizer's independence assumption.
    """
    base = np.asarray(base_values, dtype=np.float64)
    centered = base - np.nanmean(base)
    scale = np.nanstd(base)
    if scale == 0 or np.isnan(scale):
        scale = 1.0
    noise = rng.normal(0.0, noise_scale, size=len(base))
    return strength * (centered / scale) * 10.0 + (1.0 - strength) * noise * 10.0


def make_vocabulary(rng, size, min_syllables=2, max_syllables=4):
    """Synthetic word list for string/categorical dictionaries.

    Each word's syllables are drawn with one array-``choice`` call, which
    consumes the generator's stream exactly as the former per-syllable
    scalar draws did — the vocabulary for a given seed is unchanged.
    """
    words = set()
    while len(words) < size:
        n = int(rng.integers(min_syllables, max_syllables + 1))
        word = "".join(rng.choice(_SYLLABLE_ARRAY, size=n))
        if word in words:
            word = f"{word}{len(words)}"
        words.add(word)
    return sorted(words)


def apply_nulls(rng, values, null_frac, null_value):
    """Overwrite a random ``null_frac`` of entries with the NULL marker."""
    if null_frac <= 0:
        return values
    mask = rng.random(len(values)) < null_frac
    out = np.array(values, copy=True)
    out[mask] = null_value
    return out


def sorted_fraction(rng, values, fraction):
    """Partially sort values to control the physical-ordering correlation.

    ``fraction=1`` yields a fully sorted column (correlation ~1, cheap index
    scans); ``fraction=0`` leaves the random order.
    """
    if fraction <= 0:
        return values
    values = np.array(values, copy=True)
    n = len(values)
    take = int(n * min(fraction, 1.0))
    if take < 2:
        return values
    section = np.sort(values[:take], kind="stable")
    values[:take] = section
    return values
