"""Specifications for generated databases.

A :class:`DatabaseSpec` fully determines a database (given its seed): the
table layout (star / snowflake / chain / random), per-table sizes and the
column mix.  Keeping the spec on the generated :class:`~repro.storage.Database`
lets the update experiments regenerate a grown version with identical
distributions.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

__all__ = ["ColumnSpec", "TableSpec", "DatabaseSpec", "random_database_spec"]

LAYOUTS = ("star", "snowflake", "chain", "random")


@dataclass(frozen=True)
class ColumnSpec:
    """One payload column: its type and distribution parameters."""

    name: str
    kind: str  # "int_zipf" | "float_mix" | "int_correlated" | "categorical" | "string"
    n_distinct: int = 100
    skew: float = 0.0
    null_frac: float = 0.0
    correlates_with: str = None
    correlation_strength: float = 0.0
    sorted_frac: float = 0.0
    n_modes: int = 2


@dataclass(frozen=True)
class TableSpec:
    """One table: size, FK parents, and payload columns."""

    name: str
    n_rows: int
    columns: tuple
    parents: tuple = ()  # tuple of (fk_column_name, parent_table_name)
    fk_skew: float = 0.0
    fk_null_frac: float = 0.0


@dataclass(frozen=True)
class DatabaseSpec:
    """A complete database specification."""

    name: str
    seed: int
    tables: tuple
    layout: str = "random"

    def scaled(self, factor):
        """Spec for the same database grown to ``factor`` times the rows."""
        tables = tuple(replace(t, n_rows=max(1, int(t.n_rows * factor)))
                       for t in self.tables)
        return replace(self, tables=tables)

    @property
    def table_names(self):
        return [t.name for t in self.tables]


def _payload_columns(rng, n_cols, complexity):
    """Random payload column mix.

    ``complexity`` in [0, 1] scales how much skew / correlation / NULLs the
    table carries (real-world databases are high, synthetic ones low).
    """
    columns = []
    previous_numeric = None
    for i in range(n_cols):
        roll = rng.random()
        null_frac = float(rng.uniform(0, 0.25) * complexity * (rng.random() < 0.4))
        if roll < 0.35:
            spec = ColumnSpec(
                name=f"c{i}_num", kind="int_zipf",
                n_distinct=int(rng.integers(8, 2000)),
                skew=float(rng.uniform(0, 1.6) * complexity),
                null_frac=null_frac,
                sorted_frac=float(rng.choice([0.0, 0.0, 0.5, 1.0])),
            )
            previous_numeric = spec.name
        elif roll < 0.55:
            spec = ColumnSpec(
                name=f"c{i}_val", kind="float_mix",
                n_modes=int(rng.integers(1, 4)),
                null_frac=null_frac,
            )
            previous_numeric = spec.name
        elif roll < 0.75 and previous_numeric is not None and complexity > 0.3:
            spec = ColumnSpec(
                name=f"c{i}_corr", kind="int_correlated",
                correlates_with=previous_numeric,
                correlation_strength=float(rng.uniform(0.6, 0.95)),
                n_distinct=int(rng.integers(10, 500)),
                null_frac=null_frac,
            )
        elif roll < 0.9:
            spec = ColumnSpec(
                name=f"c{i}_cat", kind="categorical",
                n_distinct=int(rng.integers(3, 60)),
                skew=float(rng.uniform(0.2, 1.4) * max(complexity, 0.2)),
                null_frac=null_frac,
            )
        else:
            spec = ColumnSpec(
                name=f"c{i}_str", kind="string",
                n_distinct=int(rng.integers(30, 800)),
                skew=float(rng.uniform(0, 1.2) * max(complexity, 0.2)),
                null_frac=null_frac,
            )
        columns.append(spec)
    return columns


def random_database_spec(name, seed, layout=None, base_rows=5000,
                         n_tables=None, complexity=0.7):
    """Create a random :class:`DatabaseSpec`.

    ``base_rows`` sizes the largest (fact) table; dimension tables are
    fractions of it. ``complexity`` tunes skew/correlation/NULL richness.
    """
    rng = np.random.default_rng(seed)
    layout = layout or str(rng.choice(LAYOUTS))
    if layout not in LAYOUTS:
        raise ValueError(f"unknown layout {layout!r}")
    n_tables = n_tables or int(rng.integers(3, 9))
    n_tables = max(2, n_tables)

    tables = []
    # Table 0 is the fact/root table; others become parents per layout.
    for t in range(n_tables):
        table_name = f"t{t}" if t else "fact"
        if t == 0:
            n_rows = base_rows
        elif layout == "random":
            # Random layouts wire later tables as *children* of earlier hubs
            # (IMDB-style: several large fact-like tables reference shared
            # hub tables), so these tables must be comparable in size to the
            # root for M:N join expansion to occur.
            n_rows = max(20, int(base_rows * float(rng.uniform(0.3, 1.3))))
        else:
            n_rows = max(20, int(base_rows * float(rng.uniform(0.02, 0.4))))

        n_cols = int(rng.integers(2, 7))
        tables.append(TableSpec(
            name=table_name,
            n_rows=n_rows,
            columns=tuple(_payload_columns(rng, n_cols, complexity)),
            parents=(),
            fk_skew=float(rng.uniform(0.4, 1.6) * complexity),
            fk_null_frac=float(rng.uniform(0, 0.08) * complexity),
        ))

    # Wire up foreign keys according to the layout.
    def with_parents(spec, parent_names):
        parents = tuple((f"{p}_id", p) for p in parent_names)
        return replace(spec, parents=parents)

    wired = [tables[0]]
    names = [t.name for t in tables]
    if layout == "star":
        wired[0] = with_parents(tables[0], names[1:])
        wired.extend(tables[1:])
    elif layout == "chain":
        # fact -> t1 -> t2 -> ...
        for i, spec in enumerate(tables):
            if i + 1 < len(tables):
                wired_spec = with_parents(spec, [names[i + 1]])
            else:
                wired_spec = spec
            if i == 0:
                wired[0] = wired_spec
            else:
                wired.append(wired_spec)
    elif layout == "snowflake":
        # fact references first-level dims; those reference second-level dims.
        first = names[1:1 + max(1, (n_tables - 1) // 2)]
        second = names[1 + len(first):]
        wired[0] = with_parents(tables[0], first)
        leftover = list(second)
        for i, dim in enumerate(first):
            spec = tables[names.index(dim)]
            mine = leftover[i::len(first)]
            wired.append(with_parents(spec, mine) if mine else spec)
        for dim in second:
            wired.append(tables[names.index(dim)])
    else:
        # random: each later table references a random earlier one.  A parent
        # may thus be referenced by *several* children, so queries joining
        # two children through their shared parent expand M:N — the
        # heavy-tailed intermediate results real schemas exhibit.
        refs = {n: [] for n in names}
        for i in range(1, n_tables):
            parent = names[int(rng.integers(0, i))]
            refs[names[i]].append(parent)
        wired = [with_parents(spec, refs[spec.name]) if refs[spec.name] else spec
                 for spec in tables]

    return DatabaseSpec(name=name, seed=seed, tables=tuple(wired), layout=layout)
