"""Physical query plans.

A plan is a tree of :class:`PlanNode` objects.  Each node carries the
optimizer's estimates (rows, width, abstract cost) and, once executed, the
true output cardinality and simulated runtime — the quantities the paper's
featurization consumes (Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["PlanNode", "OPERATOR_NAMES"]

OPERATOR_NAMES = (
    "SeqScan", "IndexScan", "HashJoin", "NestedLoopJoin", "MergeJoin",
    "Sort", "HashAggregate", "Aggregate", "Gather",
    # Distributed extension (Section 5.1):
    "Broadcast", "Repartition", "ColumnarScan",
)


@dataclass
class PlanNode:
    """One physical operator in a query plan."""

    op_name: str
    children: list = field(default_factory=list)
    # Scan-specific
    table: str = None
    filter_predicate: object = None
    index_column: str = None
    # Join-specific
    join: object = None           # JoinEdge
    # Aggregate-specific
    aggregates: tuple = ()
    group_by: tuple = ()
    # Sort-specific
    sort_keys: tuple = ()
    # Parallelism / distribution
    workers: int = 1
    # Optimizer annotations
    est_rows: float = 1.0
    width: float = 8.0
    est_cost: float = 0.0         # cumulative abstract cost (like total_cost)
    est_self_cost: float = 0.0    # this operator's share
    # Execution annotations (filled by the executor)
    true_rows: float = None
    # Distributed extension: columns read by a columnar scan
    scanned_columns: tuple = ()
    storage_format: str = "row"

    def __post_init__(self):
        if self.op_name not in OPERATOR_NAMES:
            raise ValueError(f"unknown operator {self.op_name!r}")

    # ------------------------------------------------------------------
    def iter_nodes(self):
        """Post-order iteration (children before parents)."""
        for child in self.children:
            yield from child.iter_nodes()
        yield self

    def iter_preorder(self):
        yield self
        for child in self.children:
            yield from child.iter_preorder()

    @property
    def n_nodes(self):
        return sum(1 for _ in self.iter_nodes())

    @property
    def is_scan(self):
        return self.op_name in ("SeqScan", "IndexScan", "ColumnarScan")

    @property
    def is_join(self):
        return self.op_name in ("HashJoin", "NestedLoopJoin", "MergeJoin")

    def base_tables(self):
        return {node.table for node in self.iter_nodes() if node.is_scan}

    def child_rows_product(self, use_true=False):
        """Product of children's output cardinalities (card_prod feature)."""
        product = 1.0
        for child in self.children:
            rows = child.true_rows if use_true and child.true_rows is not None \
                else child.est_rows
            product *= max(rows, 1.0)
        return product

    def rows(self, use_true=False):
        if use_true and self.true_rows is not None:
            return self.true_rows
        return self.est_rows

    # ------------------------------------------------------------------
    def explain(self, indent=0, use_true=False):
        """Postgres-EXPLAIN-like rendering."""
        pad = "  " * indent
        parts = [f"{pad}{self.op_name}"]
        if self.table:
            parts.append(f"on {self.table}")
        if self.index_column:
            parts.append(f"using idx({self.index_column})")
        if self.join is not None:
            parts.append(f"[{self.join.describe()}]")
        if self.filter_predicate is not None:
            parts.append(f"filter: {self.filter_predicate.describe()}")
        rows = self.true_rows if use_true and self.true_rows is not None else self.est_rows
        parts.append(f"(rows={rows:.0f} width={self.width:.0f} "
                     f"cost={self.est_cost:.1f} workers={self.workers})")
        lines = [" ".join(parts)]
        for child in self.children:
            lines.append(child.explain(indent + 1, use_true=use_true))
        return "\n".join(lines)
