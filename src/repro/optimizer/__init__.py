"""Query optimizer: physical plans, Postgres-style costing, and planning."""

from .plan import PlanNode, OPERATOR_NAMES
from .cost_model import AnalyticalCostModel, CostParameters, annotate_costs
from .planner import PlannerConfig, plan_query

__all__ = ["PlanNode", "OPERATOR_NAMES", "AnalyticalCostModel",
           "CostParameters", "annotate_costs", "PlannerConfig", "plan_query"]
