"""Query planner: join ordering, access paths, operator selection.

The planner mirrors the relevant parts of Postgres' behaviour: greedy
left-deep join ordering on estimated cardinalities, index scans for selective
sargable predicates, nested-loop joins with indexed inners for small outers,
hash joins otherwise (build on the smaller side), parallel sequential scans
for large tables, and hash/plain aggregation on top.

All planning decisions use the *traditional* estimator (as Postgres does);
better cardinalities from data-driven models are injected only into the
features handed to the cost models, mirroring the paper's setup where plans
come from Postgres regardless of the cardinality source.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cardest.traditional import TraditionalEstimator
from ..sql import Comparison, PredOp, Query, conjunction
from .cost_model import CostParameters, annotate_costs
from .plan import PlanNode

__all__ = ["PlannerConfig", "plan_query"]


@dataclass(frozen=True)
class PlannerConfig:
    """Planner knobs (subset of the Postgres settings that matter here)."""

    enable_indexes: bool = True
    enable_parallel: bool = True
    index_selectivity_threshold: float = 0.08
    nested_loop_outer_threshold: float = 2000.0
    min_parallel_pages: int = 64
    max_workers: int = 4
    work_mem_kb: int = 4096
    cost_parameters: CostParameters = CostParameters()


def _table_width(db, query, table):
    """Output width of a scan: the columns needed above it."""
    needed = query.referenced_columns(table)
    if not needed:
        needed = {"id"} if "id" in db.table(table) else set(list(db.table(table).columns)[:1])
    return sum(db.column_stats(table, col).width for col in needed)


def _sargable_candidates(predicate):
    """Top-level AND conjuncts usable for an index scan: (node, rest)."""
    if predicate is None:
        return []
    if isinstance(predicate, Comparison):
        conjuncts = [predicate]
    elif predicate.op == PredOp.AND:
        conjuncts = list(predicate.children)
    else:
        return []
    out = []
    for i, node in enumerate(conjuncts):
        if isinstance(node, Comparison) and (node.op == PredOp.EQ or node.op.is_range
                                             or node.op == PredOp.IN):
            rest = conjuncts[:i] + conjuncts[i + 1:]
            out.append((node, conjunction(rest)))
    return out


def _build_scan(db, query, table, estimator, config):
    """Choose SeqScan / IndexScan (+ Gather for parallel scans)."""
    predicate = query.filters.get(table)
    stats = db.table_stats(table)
    est_rows = estimator.scan_rows(db, table, predicate)
    width = _table_width(db, query, table)

    if config.enable_indexes:
        best = None
        for node, rest in _sargable_candidates(predicate):
            if db.index_on(table, node.column) is None:
                continue
            sel = estimator.predicate_selectivity(db, node)
            if sel <= config.index_selectivity_threshold:
                if best is None or sel < best[0]:
                    best = (sel, node, rest)
        if best is not None:
            _, node, rest = best
            scan = PlanNode("IndexScan", table=table, index_column=node.column,
                            filter_predicate=conjunction([node, rest]),
                            est_rows=max(est_rows, 1.0), width=width)
            return scan

    workers = 1
    if config.enable_parallel and stats.relpages >= config.min_parallel_pages:
        workers = int(min(config.max_workers,
                          1 + np.log2(stats.relpages / config.min_parallel_pages + 1)))
        workers = max(workers, 2)
    scan = PlanNode("SeqScan", table=table, filter_predicate=predicate,
                    est_rows=max(est_rows, 1.0), width=width, workers=workers)
    if workers > 1:
        return PlanNode("Gather", children=[scan], est_rows=scan.est_rows,
                        width=width, workers=workers)
    return scan


def _join_edges_inside(query, tables):
    return [j for j in query.joins if j.tables() <= tables]


def _greedy_join_order(db, query, estimator):
    """Greedy left-deep order: start at the smallest filtered table, then
    repeatedly add the connected table minimizing the intermediate result."""
    remaining = set(query.tables)
    cards = {t: estimator.scan_rows(db, t, query.filters.get(t))
             for t in remaining}
    current = min(remaining, key=lambda t: cards[t])
    order = [current]
    joined = {current}
    remaining.discard(current)
    while remaining:
        candidates = []
        for join in query.joins:
            ts = join.tables()
            inside, outside = ts & joined, ts - joined
            if inside and outside:
                candidates.append(next(iter(outside)))
        if not candidates:
            # Disconnected (should not happen: Query validates connectivity).
            candidates = list(remaining)
        best, best_card = None, None
        for table in set(candidates):
            subset = joined | {table}
            card = estimator.join_rows(db, subset,
                                       _join_edges_inside(query, subset),
                                       query.filters)
            if best_card is None or card < best_card:
                best, best_card = table, card
        order.append(best)
        joined.add(best)
        remaining.discard(best)
    return order


def _choose_join(db, query, estimator, config, left_node, left_tables, table):
    """Physical join of the current left tree with base ``table``."""
    subset = set(left_tables) | {table}
    edges = _join_edges_inside(query, subset)
    new_edges = [e for e in edges if table in e.tables() and (e.tables() - {table}) <= set(left_tables)]
    join_edge = new_edges[0] if new_edges else None
    out_rows = estimator.join_rows(db, subset, edges, query.filters)

    # Nested loop with indexed inner: attractive for small outers.
    join_column_on_table = None
    if join_edge is not None:
        join_column_on_table = (join_edge.child_column
                                if join_edge.child_table == table
                                else join_edge.parent_column)
    use_nl = (config.enable_indexes
              and join_edge is not None
              and db.index_on(table, join_column_on_table) is not None
              and left_node.est_rows <= config.nested_loop_outer_threshold)

    width = left_node.width + _table_width(db, query, table)

    if use_nl:
        per_probe = max(out_rows / max(left_node.est_rows, 1.0), 1.0)
        inner = PlanNode("IndexScan", table=table,
                         index_column=join_column_on_table,
                         filter_predicate=query.filters.get(table),
                         est_rows=per_probe,
                         width=_table_width(db, query, table))
        return PlanNode("NestedLoopJoin", children=[left_node, inner],
                        join=join_edge, est_rows=max(out_rows, 1.0), width=width)

    right = _build_scan(db, query, table, estimator, config)
    # Hash join: build on the smaller input (children = [probe, build]).
    if right.est_rows <= left_node.est_rows:
        probe, build = left_node, right
    else:
        probe, build = right, left_node
    return PlanNode("HashJoin", children=[probe, build], join=join_edge,
                    est_rows=max(out_rows, 1.0), width=width)


def _estimate_groups(db, query, input_rows):
    ndv = 1.0
    for table, column in query.group_by:
        ndv *= max(db.column_stats(table, column).ndistinct, 1)
    return max(1.0, min(ndv, input_rows))


def plan_query(db, query: Query, estimator=None, config=None) -> PlanNode:
    """Plan a logical query into an annotated physical plan."""
    estimator = estimator or TraditionalEstimator()
    config = config or PlannerConfig()

    if len(query.tables) == 1:
        node = _build_scan(db, query, query.tables[0], estimator, config)
    else:
        order = _greedy_join_order(db, query, estimator)
        node = _build_scan(db, query, order[0], estimator, config)
        joined = [order[0]]
        for table in order[1:]:
            node = _choose_join(db, query, estimator, config, node, joined, table)
            joined.append(table)

    if query.group_by:
        agg = PlanNode("HashAggregate", children=[node],
                       aggregates=tuple(query.aggregates),
                       group_by=tuple(query.group_by),
                       est_rows=_estimate_groups(db, query, node.est_rows),
                       width=8.0 * (len(query.aggregates) + len(query.group_by)))
    else:
        agg = PlanNode("Aggregate", children=[node],
                       aggregates=tuple(query.aggregates),
                       est_rows=1.0, width=8.0 * len(query.aggregates))
    node = agg

    if query.order_by:
        node = PlanNode("Sort", children=[node], sort_keys=tuple(query.order_by),
                        est_rows=node.est_rows, width=node.width)

    annotate_costs(db, node, config.cost_parameters)
    return node
