"""Postgres-style analytic cost model (abstract cost units).

Produces the optimizer's cost estimates used (a) for plan choices and (b) as
the "Scaled Optimizer Costs" baseline of the paper: a linear model is fitted
on top of these abstract units to predict runtimes (Section 7.1).

The constants mirror Postgres defaults.  Like the real thing, the model is a
linear abstraction with independence-based cardinalities, so it cannot
capture the non-linear effects the runtime simulator produces (spills,
regex evaluation, parallel startup overheads) — which is precisely the gap
learned cost models exploit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sql import iter_predicate_nodes

__all__ = ["CostParameters", "annotate_costs", "AnalyticalCostModel"]


@dataclass(frozen=True)
class CostParameters:
    """Abstract cost-unit constants (Postgres defaults)."""

    seq_page_cost: float = 1.0
    random_page_cost: float = 4.0
    cpu_tuple_cost: float = 0.01
    cpu_index_tuple_cost: float = 0.005
    cpu_operator_cost: float = 0.0025
    parallel_setup_cost: float = 1000.0
    parallel_tuple_cost: float = 0.1


def _predicate_op_count(predicate):
    if predicate is None:
        return 0
    return sum(1 for _ in iter_predicate_nodes(predicate))


def _self_cost(db, node, params: CostParameters):
    """Abstract cost of one operator, excluding its children."""
    rows_out = max(node.est_rows, 1.0)

    if node.op_name in ("SeqScan", "ColumnarScan"):
        stats = db.table_stats(node.table)
        n_ops = _predicate_op_count(node.filter_predicate)
        pages = stats.relpages
        if node.op_name == "ColumnarScan" and node.scanned_columns:
            frac = sum(db.column_stats(node.table, c).width
                       for c in node.scanned_columns) / max(stats.row_width, 1.0)
            pages = max(1.0, pages * min(frac, 1.0))
        cpu = stats.reltuples * (params.cpu_tuple_cost
                                 + n_ops * params.cpu_operator_cost)
        io = pages * params.seq_page_cost
        return (io + cpu) / max(node.workers, 1)

    if node.op_name == "IndexScan":
        stats = db.table_stats(node.table)
        col_stats = db.column_stats(node.table, node.index_column)
        height_cost = 4 * params.cpu_operator_cost * np.log2(max(stats.reltuples, 2))
        # Fraction of page reads that are random depends on the heap order
        # correlation, as in Postgres' indexam costing.
        random_frac = 1.0 - 0.8 * abs(col_stats.correlation)
        page_cost = (params.random_page_cost * random_frac
                     + params.seq_page_cost * (1.0 - random_frac))
        fetch = rows_out * (page_cost
                            + params.cpu_index_tuple_cost + params.cpu_tuple_cost)
        n_ops = _predicate_op_count(node.filter_predicate)
        residual = rows_out * n_ops * params.cpu_operator_cost
        return height_cost + fetch + residual

    if node.op_name == "HashJoin":
        probe, build = node.children[0], node.children[1]
        build_rows = max(build.est_rows, 1.0)
        probe_rows = max(probe.est_rows, 1.0)
        return (build_rows * 2.0 * params.cpu_operator_cost
                + probe_rows * params.cpu_operator_cost
                + rows_out * params.cpu_tuple_cost)

    if node.op_name == "NestedLoopJoin":
        return rows_out * params.cpu_tuple_cost

    if node.op_name == "MergeJoin":
        left_rows = max(node.children[0].est_rows, 1.0)
        right_rows = max(node.children[1].est_rows, 1.0)
        return ((left_rows + right_rows) * params.cpu_operator_cost
                + rows_out * params.cpu_tuple_cost)

    if node.op_name == "Sort":
        in_rows = max(node.children[0].est_rows, 1.0)
        return (2.0 * in_rows * np.log2(in_rows + 2.0) * params.cpu_operator_cost
                + in_rows * params.cpu_tuple_cost)

    if node.op_name in ("HashAggregate", "Aggregate"):
        in_rows = max(node.children[0].est_rows, 1.0)
        n_outputs = max(len(node.aggregates) + len(node.group_by), 1)
        return (in_rows * n_outputs * params.cpu_operator_cost
                + rows_out * params.cpu_tuple_cost)

    if node.op_name == "Gather":
        return (params.parallel_setup_cost
                + rows_out * params.parallel_tuple_cost)

    if node.op_name in ("Broadcast", "Repartition"):
        # Distributed shuffles: costed per transferred tuple.
        fanout = max(node.workers, 1)
        multiplier = fanout if node.op_name == "Broadcast" else 1.0
        return rows_out * multiplier * 3.0 * params.cpu_operator_cost

    raise ValueError(f"no cost rule for operator {node.op_name!r}")


class AnalyticalCostModel:
    """Runtime predictions straight from the abstract cost units.

    This is the serving layer's graceful-degradation baseline: when a model
    deployment's circuit breaker opens, requests are answered from this
    analytical model instead of failing — explicitly flagged ``DEGRADED``,
    never silently substituted.  It needs no trained state, no
    featurization and no inference kernels, so it survives every fault the
    learned path can throw.

    The mapping is the "Scaled Optimizer Costs" shape from Section 7.1:
    ``log(runtime_ms) = coef * log1p(cost) + intercept``, which keeps
    predictions positive.  The identity-scale defaults make the prediction
    a deterministic monotone transform of the optimizer's cost estimate;
    :meth:`fit` calibrates the two scalars on executed trace records when
    any are available.  Plans already carrying an ``est_cost`` (everything
    the planner produced) are costed without re-annotation, so prediction
    never mutates a served plan.
    """

    def __init__(self, db, params=None, coef=1.0, intercept=0.0):
        self.db = db
        self.params = params or CostParameters()
        self.coef = float(coef)
        self.intercept = float(intercept)

    def plan_cost(self, plan):
        """The plan's abstract cost (annotating only when missing)."""
        if plan.est_cost:
            return float(plan.est_cost)
        return float(annotate_costs(self.db, plan, self.params))

    def predict_plan(self, plan):
        """Predicted runtime (ms) for one plan — pure, deterministic."""
        return float(np.exp(self.coef * np.log1p(self.plan_cost(plan))
                            + self.intercept))

    def predict_plans(self, plans):
        return np.array([self.predict_plan(plan) for plan in plans])

    def fit(self, records):
        """Least-squares calibration on executed ``(plan, runtime_ms)``
        trace records (log-log space).  Returns ``self``."""
        records = list(records)
        if not records:
            raise ValueError("no records to fit on")
        costs = np.log1p([self.plan_cost(r.plan) for r in records])
        log_ms = np.log(np.maximum(
            np.array([r.runtime_ms for r in records], dtype=float), 1e-3))
        if np.ptp(costs) > 0:
            self.coef, self.intercept = np.polyfit(costs, log_ms, 1)
        else:
            self.coef, self.intercept = 0.0, float(log_ms.mean())
        return self


def annotate_costs(db, root, params=None):
    """Fill ``est_self_cost`` / ``est_cost`` for every node of the plan.

    Nested-loop inner subtrees are charged once per outer row, as in
    Postgres' rescan costing.
    """
    params = params or CostParameters()

    def visit(node):
        for child in node.children:
            visit(child)
        node.est_self_cost = float(_self_cost(db, node, params))
        child_cost = sum(c.est_cost for c in node.children)
        if node.op_name == "NestedLoopJoin":
            outer, inner = node.children[0], node.children[1]
            rescans = max(outer.est_rows, 1.0)
            child_cost = outer.est_cost + rescans * inner.est_cost
        node.est_cost = node.est_self_cost + child_cost

    visit(root)
    return root.est_cost
