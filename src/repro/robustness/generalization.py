"""Estimating the generalization error of zero-shot models (Section 4.1).

Implements the paper's cross-validation-over-databases scheme: train on a
subset of the training *databases*, test on held-out databases, repeat over
splits and average.  Under the i.i.d. assumption this is an unbiased
estimator of the error on a genuinely unseen database, and its trend over a
growing number of training databases tells us when collecting further
databases stops helping (Fig. 12).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core import TrainingConfig, ZeroShotCostModel

__all__ = ["GeneralizationEstimate", "estimate_generalization_error",
           "sufficiency_curve"]


@dataclass
class GeneralizationEstimate:
    """Cross-database CV estimate of the unseen-database error."""

    per_split: list                 # median q-error per held-out database
    held_out: list                  # database names, aligned with per_split

    @property
    def mean(self):
        return float(np.mean(self.per_split))

    @property
    def std(self):
        return float(np.std(self.per_split))

    def summary(self):
        return {"mean_median_qerror": self.mean, "std": self.std,
                "splits": len(self.per_split)}


def estimate_generalization_error(traces, dbs, config=None, cards="exact",
                                  n_splits=None, seed=0,
                                  eval_cards=None):
    """Leave-one-database-out CV over the training traces.

    ``traces`` is a list of per-database traces.  For each split one database
    is held out, a model is trained on the rest, and the held-out median
    Q-error is recorded.  ``n_splits`` limits the number of rotations (all
    databases by default).
    """
    config = config or TrainingConfig()
    eval_cards = eval_cards or cards
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(traces))
    if n_splits is not None:
        order = order[:n_splits]

    per_split, held_out = [], []
    for hold in order:
        train_traces = [t for i, t in enumerate(traces) if i != hold]
        model = ZeroShotCostModel.train(train_traces, dbs, cards=cards,
                                        config=config)
        metrics = model.evaluate(traces[hold], dbs, cards=eval_cards)
        per_split.append(metrics["median"])
        held_out.append(traces[hold].db_name)
    return GeneralizationEstimate(per_split=per_split, held_out=held_out)


def sufficiency_curve(traces, dbs, eval_trace, n_databases_list, config=None,
                      cards="exact", eval_cards=None, seed=0):
    """Median Q-error on a fixed held-out workload vs #training databases.

    The paper's criterion: once the curve plateaus, additional training
    databases will not improve generalization (Fig. 12 / Section 4.1).
    Returns a list of ``(n_databases, median_q_error)`` pairs.
    """
    config = config or TrainingConfig()
    eval_cards = eval_cards or cards
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(traces))
    curve = []
    for n in n_databases_list:
        n = min(n, len(traces))
        subset = [traces[i] for i in order[:n]]
        model = ZeroShotCostModel.train(subset, dbs, cards=cards, config=config)
        metrics = model.evaluate(eval_trace, dbs, cards=eval_cards)
        curve.append((n, metrics["median"]))
    return curve
