"""Workload-drift detection (Section 4.2).

Zero-shot models degrade when production queries look unlike anything in the
training distribution (e.g. much larger joins).  The paper's strategy is to
monitor the observed Q-error at inference time and, once it exceeds a
threshold, to fine-tune with the newly observed queries (few-shot mode).

The detector is the sensing half of the continuous-learning control plane
(``repro.serving.controller``): the controller feeds it (prediction, ground
truth) pairs joined from the serving observation tap, and reads
``fine_tuning_records()`` back as the few-shot training set once it trips.
Because it lives inside a long-running daemon, the record buffer is bounded
(``max_records`` keep-latest) — the freshest observations are exactly the
ones a drift-recovery fine-tune wants anyway.
"""

from __future__ import annotations

import math
from collections import deque

import numpy as np

from ..nn import q_error

__all__ = ["DriftDetector", "DriftObservationError"]


class DriftObservationError(ValueError):
    """An unusable q-error observation (non-positive or non-finite runtime).

    Q-error is a ratio of positive runtimes; a zero, negative, NaN or
    infinite input would otherwise poison the rolling median with NaN/inf
    and silently wedge (or permanently trip) the detector.  Raising a typed
    error keeps the failure at the call site, where the controller can
    count and skip it.
    """


class DriftDetector:
    """Rolling-median Q-error monitor that triggers few-shot retraining.

    ``drifted`` trips strictly *above* ``threshold`` (a median exactly at
    the threshold does not trip) once at least ``min_observations`` errors
    are in the window.  Records passed to :meth:`observe` are retained
    under a ``max_records`` keep-latest policy (``None`` = unbounded, only
    for short-lived offline use).
    """

    def __init__(self, threshold=2.0, window=50, min_observations=10,
                 max_records=512):
        if threshold < 1.0:
            raise ValueError("q-error thresholds are >= 1")
        self.threshold = threshold
        self.window = window
        self.min_observations = min_observations
        self.max_records = max_records
        self._errors = deque(maxlen=window)
        # Keep-latest buffer of records for potential fine-tuning.
        self._observed = deque(maxlen=max_records)
        self.observed_total = 0

    def observe(self, predicted_ms, actual_ms, record=None):
        """Record one (prediction, actual) observation; returns its q-error.

        Raises :class:`DriftObservationError` when either runtime is
        non-positive or non-finite instead of letting NaN/inf enter the
        rolling median.
        """
        predicted = float(predicted_ms)
        actual = float(actual_ms)
        if (not math.isfinite(predicted) or not math.isfinite(actual)
                or predicted <= 0.0 or actual <= 0.0):
            raise DriftObservationError(
                f"unusable q-error observation (predicted={predicted_ms!r}, "
                f"actual={actual_ms!r}): runtimes must be positive and finite")
        error = float(q_error([predicted], [actual])[0])
        self._errors.append(error)
        self.observed_total += 1
        if record is not None:
            self._observed.append(record)
        return error

    @property
    def rolling_median(self):
        if not self._errors:
            return 1.0
        return float(np.median(self._errors))

    @property
    def drifted(self):
        """True once the rolling median exceeds the threshold."""
        if len(self._errors) < self.min_observations:
            return False
        return self.rolling_median > self.threshold

    def fine_tuning_records(self):
        """The retained observed queries (few-shot training set), oldest first.

        At most ``max_records`` records are kept (keep-latest); see
        :meth:`stats` for how many observations were seen versus retained.
        """
        return list(self._observed)

    def stats(self):
        """Observation/retention counters plus the current drift state."""
        return {
            "observed_total": self.observed_total,
            "retained_records": len(self._observed),
            "max_records": self.max_records,
            "window_fill": len(self._errors),
            "rolling_median": self.rolling_median,
            "drifted": self.drifted,
        }

    def reset(self):
        self._errors.clear()
        self._observed.clear()
        self.observed_total = 0

    def monitor(self, model, trace, dbs, cards="deepdb", estimator_cache=None):
        """Replay a trace through the detector; returns the per-query errors."""
        records = list(trace)
        predictions = model.predict_records(records, dbs, cards=cards,
                                            estimator_cache=estimator_cache)
        errors = []
        for record, predicted in zip(records, predictions):
            errors.append(self.observe(predicted, record.runtime_ms, record))
        return np.array(errors)
