"""Workload-drift detection (Section 4.2).

Zero-shot models degrade when production queries look unlike anything in the
training distribution (e.g. much larger joins).  The paper's strategy is to
monitor the observed Q-error at inference time and, once it exceeds a
threshold, to fine-tune with the newly observed queries (few-shot mode).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..nn import q_error

__all__ = ["DriftDetector"]


class DriftDetector:
    """Rolling-median Q-error monitor that triggers few-shot retraining."""

    def __init__(self, threshold=2.0, window=50, min_observations=10):
        if threshold < 1.0:
            raise ValueError("q-error thresholds are >= 1")
        self.threshold = threshold
        self.window = window
        self.min_observations = min_observations
        self._errors = deque(maxlen=window)
        self._observed = []   # (record, actual) pairs for potential fine-tuning

    def observe(self, predicted_ms, actual_ms, record=None):
        """Record one (prediction, actual) observation; returns its q-error."""
        error = float(q_error([predicted_ms], [actual_ms])[0])
        self._errors.append(error)
        if record is not None:
            self._observed.append(record)
        return error

    @property
    def rolling_median(self):
        if not self._errors:
            return 1.0
        return float(np.median(self._errors))

    @property
    def drifted(self):
        """True once the rolling median exceeds the threshold."""
        if len(self._errors) < self.min_observations:
            return False
        return self.rolling_median > self.threshold

    def fine_tuning_records(self):
        """The queries observed since monitoring began (few-shot training set)."""
        return list(self._observed)

    def reset(self):
        self._errors.clear()
        self._observed.clear()

    def monitor(self, model, trace, dbs, cards="deepdb", estimator_cache=None):
        """Replay a trace through the detector; returns the per-query errors."""
        records = list(trace)
        predictions = model.predict_records(records, dbs, cards=cards,
                                            estimator_cache=estimator_cache)
        errors = []
        for record, predicted in zip(records, predictions):
            errors.append(self.observe(predicted, record.runtime_ms, record))
        return np.array(errors)
