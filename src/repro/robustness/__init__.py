"""Robustness tooling: generalization-error estimation, drift detection
(Section 4 of the paper), and the deterministic fault-injection plane the
serving stack is hardened against (``faults.py``)."""

from .generalization import (GeneralizationEstimate,
                             estimate_generalization_error, sufficiency_curve)
from .drift import DriftDetector, DriftObservationError
from .faults import (FaultSchedule, FaultSpec, InjectedFault, inject,
                     install, uninstall)

__all__ = ["GeneralizationEstimate", "estimate_generalization_error",
           "sufficiency_curve", "DriftDetector", "DriftObservationError",
           "FaultSchedule", "FaultSpec", "InjectedFault", "inject",
           "install", "uninstall"]
