"""Robustness tooling: generalization-error estimation and drift detection
(Section 4 of the paper)."""

from .generalization import (GeneralizationEstimate,
                             estimate_generalization_error, sufficiency_curve)
from .drift import DriftDetector

__all__ = ["GeneralizationEstimate", "estimate_generalization_error",
           "sufficiency_curve", "DriftDetector"]
