"""Deterministic, seeded fault-injection plane for the serving stack.

Chaos testing is only useful when a failing run can be *replayed*: the same
schedule must produce the same faults at the same places, every time.  This
module gives the repo that property:

* **Injection points are registered by name.**  Production code calls
  :func:`check` (or :func:`corrupt` / :func:`delay_ms`) at eleven named
  choke points — registry checkpoint hydration (``registry.hydrate``),
  artifact-store reads (``store.read``), featurization
  (``serve.featurize``), inference (``serve.infer``), the batcher loop
  itself (``serve.batcher``), the continuous-learning control plane's
  observation ingest (``controller.observe``), retrain/publish step
  (``controller.retrain``) and shadow evaluation (``controller.shadow``),
  and the fleet's IPC plane — pipe sends (``fleet.pipe.send``), pipe
  receives (``fleet.pipe.recv``) and the worker compute loop
  (``fleet.worker.hang``).  With no schedule installed these calls are a
  single ``is None`` check — the fault plane costs nothing when idle.
* **A seeded :class:`FaultSchedule` decides per call.**  Every injection
  point owns an independent counted RNG stream seeded from
  ``(schedule seed, point name)``; the *n*-th call at a point always sees
  the same draw, regardless of wall-clock time or what other points did in
  between.  All the hardened points are driven by the single batcher
  thread (or by per-test callers), so the per-point call sequence — and
  therefore the whole chaos run — replays bit-identically.
* **Five fault actions.**  ``raise`` (an :class:`InjectedFault`, or an
  exception type the spec names), ``delay`` (a bounded sleep, for deadline
  and tail-latency testing), ``corrupt`` (the caller passes payload
  bytes through :func:`corrupt`, which flips deterministic bits — how torn
  checkpoint reads are simulated), ``drop`` (:func:`check` returns the
  string ``"drop"`` and the call site discards the message — how lost IPC
  traffic is simulated) and ``hang`` (a long sleep — ``delay_ms``, or
  effectively forever when unset — simulating a wedged worker; ended by
  the supervisor's SIGKILL).  :func:`check` returns the fired action name
  (or ``None``), so pipe call sites can honor ``drop`` without exceptions.
* **Targeted poisoning.**  A spec may carry ``keys`` — opaque identifiers
  (the server passes plan digests) that make specific *requests* poisonous
  instead of sampling by rate.  This is what the poisoned-batch bisection
  tests use: one key fails alone, its micro-batch neighbours succeed.

Usage::

    schedule = FaultSchedule([
        FaultSpec("serve.infer", rate=0.2, max_faults=5),
        FaultSpec("registry.hydrate", action="corrupt", rate=1.0,
                  max_faults=1),
    ], seed=7)
    with inject(schedule):
        ... drive the server ...
    schedule.stats()   # calls/faults per point, for assertions

Every triggered fault bumps a ``fault.injected.<point>`` perfstats counter
so chaos runs are observable through the same plane as everything else.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from hashlib import blake2b

import numpy as np

from .. import perfstats

__all__ = ["FaultSpec", "FaultSchedule", "InjectedFault", "inject",
           "install", "uninstall", "active_schedule", "check", "corrupt",
           "POINTS"]

# The registered injection-point names (documentation + typo guard: a spec
# naming an unknown point fails fast at schedule construction).
POINTS = (
    "store.read",          # ArtifactStore.load payload reads
    "registry.hydrate",    # ModelRegistry checkpoint hydration
    "serve.featurize",     # batcher-side featurization of a request group
    "serve.infer",         # batcher-side predict_runtimes call
    "serve.batcher",       # the batcher loop machinery itself (crash tests)
    "controller.observe",  # control-plane observation ingest (per record)
    "controller.retrain",  # drift retrain: train start + pre-publish
    "controller.shadow",   # shadow evaluation of an unactivated candidate
    "fleet.pipe.send",     # router<->worker pipe sends (drop/delay/raise)
    "fleet.pipe.recv",     # router<->worker pipe receives (drop/delay/raise)
    "fleet.worker.hang",   # worker compute loop: wedge before a batch
)

# How long a "hang" action sleeps when the spec leaves delay_ms at 0 —
# effectively forever; the fleet supervisor's SIGKILL is what ends it.
_HANG_FOREVER_MS = 3_600_000.0


class InjectedFault(RuntimeError):
    """An error raised by the fault plane (never by real code paths)."""


@dataclass(frozen=True)
class FaultSpec:
    """What can go wrong at one injection point.

    ``rate`` is the per-call fault probability drawn from the point's
    seeded stream; ``keys`` instead (or additionally) poisons specific
    request identifiers.  ``max_faults`` bounds how many times the spec
    fires (``None`` = unbounded); ``skip_calls`` lets the first *n* calls
    through untouched, so a schedule can hit "mid-load" deterministically.
    """

    point: str
    rate: float = 0.0
    action: str = "raise"    # "raise" | "delay" | "corrupt" | "drop" | "hang"
    error: type = InjectedFault
    message: str = ""
    delay_ms: float = 0.0
    max_faults: int | None = None
    skip_calls: int = 0
    keys: frozenset = frozenset()

    def __post_init__(self):
        if self.point not in POINTS:
            raise ValueError(f"unknown injection point {self.point!r}; "
                             f"registered points: {POINTS}")
        if self.action not in ("raise", "delay", "corrupt", "drop", "hang"):
            raise ValueError(f"unknown fault action {self.action!r}")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        object.__setattr__(self, "keys", frozenset(self.keys))


@dataclass
class _PointState:
    """Per-point deterministic stream + counters (lock-protected)."""

    rng: np.random.Generator
    calls: int = 0
    faults: int = 0
    by_action: dict = field(default_factory=dict)


class FaultSchedule:
    """A seeded, replayable decision procedure over the injection points.

    Decisions are a pure function of ``(seed, point, call index at that
    point, request keys)`` — two runs that issue the same per-point call
    sequences observe identical faults.  Thread-safe: a lock serializes the
    per-point counters and RNG draws.
    """

    def __init__(self, specs, seed=0):
        self.specs = list(specs)
        self.seed = int(seed)
        self._by_point = {}
        for spec in self.specs:
            self._by_point.setdefault(spec.point, []).append(spec)
        self._lock = threading.Lock()
        self._state = {}
        for point in self._by_point:
            point_seed = int.from_bytes(
                blake2b(f"{self.seed}:{point}".encode(),
                        digest_size=8).digest(), "big")
            self._state[point] = _PointState(
                rng=np.random.default_rng(point_seed))
        self._fired = {id(spec): 0 for spec in self.specs}

    # ------------------------------------------------------------------
    def decide(self, point, keys=()):
        """The first firing spec for this call, or ``None``.

        Exactly one uniform draw is consumed per call *per rate-bearing
        spec* at the point, fired or not, so earlier specs exhausting
        ``max_faults`` never shifts the stream of later calls.
        """
        specs = self._by_point.get(point)
        if not specs:
            return None
        with self._lock:
            state = self._state[point]
            state.calls += 1
            fired = None
            for spec in specs:
                hit = False
                if spec.rate > 0.0:
                    draw = float(state.rng.random())
                    hit = draw < spec.rate
                if spec.keys and not hit:
                    hit = any(key in spec.keys for key in keys)
                if not hit or fired is not None:
                    continue
                if state.calls <= spec.skip_calls:
                    continue
                if (spec.max_faults is not None
                        and self._fired[id(spec)] >= spec.max_faults):
                    continue
                self._fired[id(spec)] += 1
                state.faults += 1
                state.by_action[spec.action] = \
                    state.by_action.get(spec.action, 0) + 1
                fired = spec
            return fired

    def stats(self):
        """Per-point call/fault counts (for replay assertions)."""
        with self._lock:
            return {point: {"calls": state.calls, "faults": state.faults,
                            "by_action": dict(state.by_action)}
                    for point, state in self._state.items()}

    def total_faults(self):
        with self._lock:
            return sum(state.faults for state in self._state.values())

    def __repr__(self):
        return (f"FaultSchedule(seed={self.seed}, "
                f"specs={len(self.specs)}, points={sorted(self._by_point)})")


# ----------------------------------------------------------------------
# Installation (module-level, explicitly scoped)
# ----------------------------------------------------------------------
_active: FaultSchedule | None = None
_install_lock = threading.Lock()


def install(schedule):
    """Install ``schedule`` as the process-wide active fault schedule."""
    global _active
    with _install_lock:
        if _active is not None:
            raise RuntimeError("a fault schedule is already installed")
        _active = schedule
    return schedule


def uninstall():
    """Remove the active schedule (idempotent)."""
    global _active
    with _install_lock:
        _active = None


def active_schedule():
    return _active


class inject:
    """Context manager: install a schedule for the duration of a block."""

    def __init__(self, schedule):
        self.schedule = schedule

    def __enter__(self):
        install(self.schedule)
        return self.schedule

    def __exit__(self, exc_type, exc, tb):
        uninstall()
        return False


# ----------------------------------------------------------------------
# Injection-point API (what production code calls)
# ----------------------------------------------------------------------
def check(point, keys=()):
    """Consult the active schedule at ``point``; act, return the action.

    ``keys`` are opaque request identifiers a targeted spec can poison.
    Returns the fired action name (``"delay"``, ``"drop"``, ``"hang"``)
    after performing any sleep, so pipe call sites can honor ``drop`` by
    discarding the message; ``raise`` raises.  A ``corrupt`` decision is
    ignored here (only byte-stream call sites honor it via
    :func:`corrupt`).  No fault — or no schedule installed, a single
    attribute read — returns ``None``.
    """
    schedule = _active
    if schedule is None:
        return None
    spec = schedule.decide(point, keys)
    if spec is None:
        return None
    perfstats.increment(f"fault.injected.{point}")
    if spec.action == "delay":
        time.sleep(spec.delay_ms / 1e3)
        return "delay"
    if spec.action == "drop":
        return "drop"
    if spec.action == "hang":
        time.sleep((spec.delay_ms or _HANG_FOREVER_MS) / 1e3)
        return "hang"
    if spec.action == "raise":
        raise spec.error(spec.message
                         or f"injected fault at {point!r}")
    # "corrupt" at a non-byte call site: treated as a raise so schedules
    # stay meaningful wherever they are pointed.
    raise InjectedFault(f"injected corruption at non-byte point {point!r}")


def corrupt(point, payload, keys=()):
    """Pass ``payload`` bytes through the fault plane.

    A ``corrupt`` decision returns a deterministically damaged copy (first
    and middle bytes XOR-flipped — enough to break any checksum); ``raise``
    and ``delay`` behave as in :func:`check`.  No fault: the payload is
    returned untouched, zero-copy.
    """
    schedule = _active
    if schedule is None:
        return payload
    spec = schedule.decide(point, keys)
    if spec is None:
        return payload
    perfstats.increment(f"fault.injected.{point}")
    if spec.action == "delay":
        time.sleep(spec.delay_ms / 1e3)
        return payload
    if spec.action == "drop":
        # At a byte call site a dropped message has no meaning; counted,
        # payload passes untouched.
        return payload
    if spec.action == "hang":
        time.sleep((spec.delay_ms or _HANG_FOREVER_MS) / 1e3)
        return payload
    if spec.action == "raise":
        raise spec.error(spec.message or f"injected fault at {point!r}")
    if not payload:
        return payload
    damaged = bytearray(payload)
    damaged[0] ^= 0xFF
    damaged[len(damaged) // 2] ^= 0xFF
    return bytes(damaged)
