"""Setup shim: enables `pip install -e .` in offline environments where the
PEP 660 editable-wheel path is unavailable (no `wheel` package)."""

from setuptools import setup

setup()
